package twitter

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"fakeproject/internal/simclock"
)

func newTestStore() (*Store, *simclock.Virtual) {
	clock := simclock.NewVirtualAtEpoch()
	return NewStore(clock, 42), clock
}

func mkUser(t *testing.T, s *Store, p UserParams) UserID {
	t.Helper()
	id, err := s.CreateUser(p)
	if err != nil {
		t.Fatalf("CreateUser: %v", err)
	}
	return id
}

func TestCreateUserAssignsSequentialIDs(t *testing.T) {
	s, _ := newTestStore()
	for want := UserID(1); want <= 10; want++ {
		if got := mkUser(t, s, UserParams{}); got != want {
			t.Fatalf("ID = %d, want %d", got, want)
		}
	}
	if s.UserCount() != 10 {
		t.Fatalf("UserCount = %d, want 10", s.UserCount())
	}
}

func TestExplicitScreenNameRoundTrip(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{ScreenName: "BarackObama"})
	name, err := s.ScreenName(id)
	if err != nil || name != "BarackObama" {
		t.Fatalf("ScreenName = %q, %v", name, err)
	}
	got, err := s.LookupName("BarackObama")
	if err != nil || got != id {
		t.Fatalf("LookupName = %d, %v", got, err)
	}
}

func TestDuplicateScreenNameRejectedAndRolledBack(t *testing.T) {
	s, _ := newTestStore()
	mkUser(t, s, UserParams{ScreenName: "davc"})
	_, err := s.CreateUser(UserParams{ScreenName: "davc"})
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
	if s.UserCount() != 1 {
		t.Fatalf("failed create must not leak a record; count = %d", s.UserCount())
	}
}

func TestSyntheticScreenNameDeterministic(t *testing.T) {
	s1, _ := newTestStore()
	s2, _ := newTestStore()
	a := mkUser(t, s1, UserParams{})
	b := mkUser(t, s2, UserParams{})
	n1, _ := s1.ScreenName(a)
	n2, _ := s2.ScreenName(b)
	if n1 != n2 {
		t.Fatalf("same seed, same ID should give same name: %q vs %q", n1, n2)
	}
	if n1 == "" {
		t.Fatal("synthetic name empty")
	}
}

func TestLookupNameUnknown(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.LookupName("nobody"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("err = %v, want ErrUnknownName", err)
	}
}

func TestProfileFields(t *testing.T) {
	s, _ := newTestStore()
	created := simclock.Epoch.AddDate(-2, 0, 0)
	last := simclock.Epoch.AddDate(0, 0, -10)
	id := mkUser(t, s, UserParams{
		ScreenName: "tester",
		CreatedAt:  created,
		LastTweet:  last,
		Statuses:   123,
		Friends:    45,
		Followers:  678,
		Bio:        true,
		Location:   true,
		URL:        true,
		Verified:   true,
		Class:      ClassGenuine,
		Behavior:   Behavior{RetweetRatio: 0.25, LinkRatio: 0.5, SpamRatio: 0, DuplicateRatio: 0.1},
	})
	p, err := s.Profile(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.ScreenName != "tester" || p.StatusesCount != 123 || p.FriendsCount != 45 || p.FollowersCount != 678 {
		t.Fatalf("profile mismatch: %+v", p)
	}
	if !p.CreatedAt.Equal(created) || !p.LastTweetAt.Equal(last) {
		t.Fatalf("time mismatch: %+v", p)
	}
	if p.Bio == "" || p.Location == "" || p.URL == "" {
		t.Fatalf("bio/location/url should be synthesised: %+v", p)
	}
	if !p.Verified || p.Protected || p.DefaultProfileImage {
		t.Fatalf("flags mismatch: %+v", p)
	}
	if p.Behavior.RetweetRatio != 0.25 || p.Behavior.LinkRatio != 0.5 || p.Behavior.DuplicateRatio != 0.1 {
		t.Fatalf("behavior mismatch: %+v", p.Behavior)
	}
}

func TestProfileNeverTweeted(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{})
	p, err := s.Profile(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.LastTweetAt.IsZero() || !p.HasNeverTweeted() {
		t.Fatalf("expected never-tweeted profile, got %+v", p)
	}
}

func TestFollowerFriendRatio(t *testing.T) {
	p := Profile{FollowersCount: 10, FriendsCount: 500}
	if r := p.FollowerFriendRatio(); r != 0.02 {
		t.Fatalf("ratio = %v, want 0.02", r)
	}
	p = Profile{FollowersCount: 7, FriendsCount: 0}
	if r := p.FollowerFriendRatio(); r != 7 {
		t.Fatalf("zero friends ratio = %v, want 7", r)
	}
}

func TestProfilesSkipsUnknown(t *testing.T) {
	s, _ := newTestStore()
	a := mkUser(t, s, UserParams{})
	got := s.Profiles([]UserID{a, 999, a})
	if len(got) != 2 {
		t.Fatalf("Profiles returned %d, want 2 (unknown skipped)", len(got))
	}
}

func TestAddFollowerOrderInvariant(t *testing.T) {
	s, clock := newTestStore()
	target := mkUser(t, s, UserParams{ScreenName: "target"})
	var followers []UserID
	for i := 0; i < 50; i++ {
		f := mkUser(t, s, UserParams{})
		if err := s.AddFollower(target, f, clock.Now()); err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
		clock.Advance(time.Minute)
	}
	chrono, err := s.FollowersChronological(target)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range chrono {
		if id != followers[i] {
			t.Fatalf("chronological order broken at %d", i)
		}
	}
	newest, err := s.FollowersNewestFirst(target)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range newest {
		if id != followers[len(followers)-1-i] {
			t.Fatalf("newest-first order broken at %d", i)
		}
	}
	if n, _ := s.FollowerCount(target); n != 50 {
		t.Fatalf("FollowerCount = %d, want 50", n)
	}
}

func TestAddFollowerRejectsTimeTravel(t *testing.T) {
	s, clock := newTestStore()
	target := mkUser(t, s, UserParams{})
	f1 := mkUser(t, s, UserParams{})
	f2 := mkUser(t, s, UserParams{})
	if err := s.AddFollower(target, f1, clock.Now()); err != nil {
		t.Fatal(err)
	}
	err := s.AddFollower(target, f2, clock.Now().Add(-time.Hour))
	if !errors.Is(err, ErrNotMonotonic) {
		t.Fatalf("err = %v, want ErrNotMonotonic", err)
	}
}

func TestAddFollowerUnknownUsers(t *testing.T) {
	s, clock := newTestStore()
	id := mkUser(t, s, UserParams{})
	if err := s.AddFollower(999, id, clock.Now()); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown target err = %v", err)
	}
	if err := s.AddFollower(id, 999, clock.Now()); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown follower err = %v", err)
	}
}

func TestFollowerCountSyntheticVsTarget(t *testing.T) {
	s, clock := newTestStore()
	a := mkUser(t, s, UserParams{Followers: 777})
	if n, _ := s.FollowerCount(a); n != 777 {
		t.Fatalf("synthetic count = %d, want 777", n)
	}
	// Once materialised edges exist, they win.
	f := mkUser(t, s, UserParams{})
	if err := s.AddFollower(a, f, clock.Now()); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.FollowerCount(a); n != 1 {
		t.Fatalf("materialised count = %d, want 1", n)
	}
	p, _ := s.Profile(a)
	if p.FollowersCount != 1 {
		t.Fatalf("profile count = %d, want 1", p.FollowersCount)
	}
}

func TestNonTargetHasEmptyFollowerList(t *testing.T) {
	s, _ := newTestStore()
	a := mkUser(t, s, UserParams{Followers: 10})
	got, err := s.FollowersChronological(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("non-target should have no materialised followers, got %d", len(got))
	}
}

func TestAppendTweetUpdatesCounters(t *testing.T) {
	s, clock := newTestStore()
	id := mkUser(t, s, UserParams{CreatedAt: simclock.Epoch.AddDate(-1, 0, 0)})
	for i := 0; i < 5; i++ {
		if _, err := s.AppendTweet(id, Tweet{CreatedAt: clock.Now(), Text: "hello"}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	p, _ := s.Profile(id)
	if p.StatusesCount != 5 {
		t.Fatalf("StatusesCount = %d, want 5", p.StatusesCount)
	}
	if !p.LastTweetAt.Equal(simclock.Epoch.Add(4 * time.Hour)) {
		t.Fatalf("LastTweetAt = %v", p.LastTweetAt)
	}
	tl, err := s.Timeline(id, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 5 {
		t.Fatalf("timeline length = %d, want 5", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].CreatedAt.After(tl[i-1].CreatedAt) {
			t.Fatal("explicit timeline must be newest first")
		}
	}
}

func TestAppendTweetMonotonic(t *testing.T) {
	s, clock := newTestStore()
	id := mkUser(t, s, UserParams{})
	if _, err := s.AppendTweet(id, Tweet{CreatedAt: clock.Now()}); err != nil {
		t.Fatal(err)
	}
	_, err := s.AppendTweet(id, Tweet{CreatedAt: clock.Now().Add(-time.Minute)})
	if !errors.Is(err, ErrNotMonotonic) {
		t.Fatalf("err = %v, want ErrNotMonotonic", err)
	}
}

func TestSyntheticTimelineDeterministicAndShaped(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{
		CreatedAt: simclock.Epoch.AddDate(-3, 0, 0),
		LastTweet: simclock.Epoch.AddDate(0, 0, -5),
		Statuses:  500,
		Behavior:  Behavior{RetweetRatio: 0.9, LinkRatio: 0.9, SpamRatio: 0.5, DuplicateRatio: 0.3},
	})
	a, err := s.Timeline(id, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Timeline(id, 200)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("timeline lengths %d/%d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synthetic timeline not deterministic at %d", i)
		}
	}
	// Newest first, newest at LastTweet.
	if !a[0].CreatedAt.Equal(simclock.Epoch.AddDate(0, 0, -5)) {
		t.Fatalf("newest tweet at %v", a[0].CreatedAt)
	}
	retweets, links := 0, 0
	for i, tw := range a {
		if i > 0 && tw.CreatedAt.After(a[i-1].CreatedAt) {
			t.Fatal("timeline must be newest first")
		}
		if tw.IsRetweet {
			retweets++
			if !strings.HasPrefix(tw.Text, "RT @") {
				t.Fatalf("retweet text %q lacks RT prefix", tw.Text)
			}
		}
		if tw.HasLink {
			links++
			if !strings.Contains(tw.Text, "http://") {
				t.Fatalf("link tweet %q lacks URL", tw.Text)
			}
		}
	}
	if retweets < 150 {
		t.Fatalf("retweet ratio too low: %d/200 for 0.9", retweets)
	}
	if links < 150 {
		t.Fatalf("link ratio too low: %d/200 for 0.9", links)
	}
}

func TestSyntheticTimelineRespectsStatusCount(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{
		CreatedAt: simclock.Epoch.AddDate(-1, 0, 0),
		LastTweet: simclock.Epoch.AddDate(0, 0, -1),
		Statuses:  7,
	})
	tl, err := s.Timeline(id, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 7 {
		t.Fatalf("timeline = %d tweets, want 7 (status count)", len(tl))
	}
}

func TestTimelineOfNeverTweetedIsEmpty(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{Statuses: 0})
	tl, err := s.Timeline(id, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 0 {
		t.Fatalf("timeline = %d, want 0", len(tl))
	}
}

func TestTimelineTimesWithinAccountLife(t *testing.T) {
	s, _ := newTestStore()
	created := simclock.Epoch.AddDate(-1, 0, 0)
	id := mkUser(t, s, UserParams{
		CreatedAt: created,
		LastTweet: simclock.Epoch.AddDate(0, 0, -2),
		Statuses:  3000,
	})
	tl, _ := s.Timeline(id, 3000)
	for _, tw := range tl {
		if tw.CreatedAt.Before(created) {
			t.Fatalf("tweet at %v predates account creation %v", tw.CreatedAt, created)
		}
	}
}

func TestTrueClass(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{Class: ClassFake})
	c, err := s.TrueClass(id)
	if err != nil || c != ClassFake {
		t.Fatalf("TrueClass = %v, %v", c, err)
	}
	if c.String() != "fake" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestClassCounts(t *testing.T) {
	s, _ := newTestStore()
	var ids []UserID
	for i := 0; i < 3; i++ {
		ids = append(ids, mkUser(t, s, UserParams{Class: ClassGenuine}))
	}
	for i := 0; i < 2; i++ {
		ids = append(ids, mkUser(t, s, UserParams{Class: ClassFake}))
	}
	ids = append(ids, mkUser(t, s, UserParams{Class: ClassInactive}))
	got := s.ClassCounts(ids)
	if got[ClassGenuine] != 3 || got[ClassFake] != 2 || got[ClassInactive] != 1 {
		t.Fatalf("ClassCounts = %v", got)
	}
}

func TestFollowEdgesCopied(t *testing.T) {
	s, clock := newTestStore()
	target := mkUser(t, s, UserParams{})
	f := mkUser(t, s, UserParams{})
	if err := s.AddFollower(target, f, clock.Now()); err != nil {
		t.Fatal(err)
	}
	edges, _ := s.FollowEdges(target)
	edges[0].Follower = 999
	edges2, _ := s.FollowEdges(target)
	if edges2[0].Follower != f {
		t.Fatal("FollowEdges must return a copy")
	}
}

func TestFollowersNewestFirstProperty(t *testing.T) {
	s, clock := newTestStore()
	target := mkUser(t, s, UserParams{})
	f := func(nRaw uint8) bool {
		n := int(nRaw % 20)
		for i := 0; i < n; i++ {
			id := s.MustCreateUser(UserParams{})
			if err := s.AddFollower(target, id, clock.Now()); err != nil {
				return false
			}
			clock.Advance(time.Second)
		}
		chrono, err1 := s.FollowersChronological(target)
		newest, err2 := s.FollowersNewestFirst(target)
		if err1 != nil || err2 != nil || len(chrono) != len(newest) {
			return false
		}
		for i := range chrono {
			if chrono[i] != newest[len(newest)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGrowPreallocates(t *testing.T) {
	s, _ := newTestStore()
	s.Grow(1000)
	for i := 0; i < 1000; i++ {
		mkUser(t, s, UserParams{})
	}
	if s.UserCount() != 1000 {
		t.Fatalf("UserCount = %d", s.UserCount())
	}
}

func TestIsTarget(t *testing.T) {
	s, clock := newTestStore()
	a := mkUser(t, s, UserParams{})
	b := mkUser(t, s, UserParams{})
	if s.IsTarget(a) {
		t.Fatal("fresh account should not be a target")
	}
	if err := s.AddFollower(a, b, clock.Now()); err != nil {
		t.Fatal(err)
	}
	if !s.IsTarget(a) {
		t.Fatal("account with followers should be a target")
	}
}
