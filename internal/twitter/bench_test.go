package twitter

import (
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

func benchStore(b *testing.B, followers int) (*Store, UserID) {
	b.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 1)
	store.Grow(followers + 1)
	target := store.MustCreateUser(UserParams{ScreenName: "t"})
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < followers; i++ {
		id := store.MustCreateUser(UserParams{
			CreatedAt: simclock.Epoch.AddDate(-2, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -5),
			Statuses:  200, Friends: 150, Followers: 80,
			Bio: true, Location: true,
			Behavior: Behavior{RetweetRatio: 0.2, LinkRatio: 0.3, DuplicateRatio: 0.05},
		})
		if err := store.AddFollower(target, id, at); err != nil {
			b.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	return store, target
}

// BenchmarkCreateUser measures procedural account creation (the population
// build hot path: ~1.5M calls for the full testbed).
func BenchmarkCreateUser(b *testing.B) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 1)
	store.Grow(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.MustCreateUser(UserParams{Statuses: 10, Friends: 100})
	}
}

// BenchmarkProfileMaterialise measures compact-record → Profile expansion
// (the users/lookup hot path).
func BenchmarkProfileMaterialise(b *testing.B) {
	store, _ := benchStore(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Profile(UserID(2 + i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowersNewestFirst measures the API-order view of a 50K list.
func BenchmarkFollowersNewestFirst(b *testing.B) {
	store, target := benchStore(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := store.FollowersNewestFirst(target)
		if err != nil || len(ids) != 50000 {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowersPage measures one 5K API page against the same 50K list
// — the per-call cost a paging crawler actually pays (binary search on the
// seq anchor + a page copy), versus the full-list copy of
// BenchmarkFollowersNewestFirst. Anchors rotate through the list so the
// search depth is representative, not best-case.
func BenchmarkFollowersPage(b *testing.B) {
	store, target := benchStore(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := store.FollowersPage(target, uint64((i%10+1)*5000), 5000)
		if err != nil || len(page.IDs) != 5000 {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthTimeline measures deterministic timeline synthesis
// (200 tweets, the user_timeline page size).
func BenchmarkSynthTimeline(b *testing.B) {
	store, _ := benchStore(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := store.Timeline(UserID(2+i%10), 200)
		if err != nil || len(tl) == 0 {
			b.Fatal(err)
		}
	}
}
