package twitter

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/benchjson"
	"fakeproject/internal/simclock"
)

func benchStore(b testing.TB, followers int) (*Store, UserID) {
	b.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 1)
	store.Grow(followers + 1)
	target := store.MustCreateUser(UserParams{ScreenName: "t"})
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < followers; i++ {
		id := store.MustCreateUser(UserParams{
			CreatedAt: simclock.Epoch.AddDate(-2, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -5),
			Statuses:  200, Friends: 150, Followers: 80,
			Bio: true, Location: true,
			Behavior: Behavior{RetweetRatio: 0.2, LinkRatio: 0.3, DuplicateRatio: 0.05},
		})
		if err := store.AddFollower(target, id, at); err != nil {
			b.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	return store, target
}

// BenchmarkCreateUser measures procedural account creation (the population
// build hot path: ~1.5M calls for the full testbed).
func BenchmarkCreateUser(b *testing.B) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 1)
	store.Grow(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.MustCreateUser(UserParams{Statuses: 10, Friends: 100})
	}
}

// BenchmarkProfileMaterialise measures compact-record → Profile expansion
// (the users/lookup hot path).
func BenchmarkProfileMaterialise(b *testing.B) {
	store, _ := benchStore(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Profile(UserID(2 + i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowersNewestFirst measures the API-order view of a 50K list.
func BenchmarkFollowersNewestFirst(b *testing.B) {
	store, target := benchStore(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := store.FollowersNewestFirst(target)
		if err != nil || len(ids) != 50000 {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowersPage measures one 5K API page against the same 50K list
// — the per-call cost a paging crawler actually pays (binary search on the
// seq anchor + a page copy), versus the full-list copy of
// BenchmarkFollowersNewestFirst. Anchors rotate through the list so the
// search depth is representative, not best-case.
func BenchmarkFollowersPage(b *testing.B) {
	store, target := benchStore(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := store.FollowersPage(target, uint64((i%10+1)*5000), 5000)
		if err != nil || len(page.IDs) != 5000 {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowersPageParallel measures the same 5K page with all
// goroutines hammering one target — the celebrity-read case. Pages are
// served off the RCU-published segment view with no shard lock, so
// throughput should scale with reader parallelism instead of serialising on
// the target's shard; the BENCH_twitter.json lock-free-read row tracks it.
func BenchmarkFollowersPageParallel(b *testing.B) {
	store, target := benchStore(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			page, err := store.FollowersPage(target, uint64((i%10+1)*5000), 5000)
			if err != nil || len(page.IDs) != 5000 {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSynthTimeline measures deterministic timeline synthesis
// (200 tweets, the user_timeline page size).
func BenchmarkSynthTimeline(b *testing.B) {
	store, _ := benchStore(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := store.Timeline(UserID(2+i%10), 200)
		if err != nil || len(tl) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkCreateUserPostGrow is the Grow contract as a benchmark: with
// capacity split across shards up front, the population build hot path must
// run allocation-free (b.ReportAllocs makes the 0 allocs/op visible).
func BenchmarkCreateUserPostGrow(b *testing.B) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 1)
	store.Grow(b.N)
	params := UserParams{CreatedAt: simclock.Epoch, Statuses: 10, Friends: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.MustCreateUser(params)
	}
}

// buildMixedStore assembles the parallel-mixed fixture: `targets` accounts
// with materialised follower lists (seeded with initial edges) plus a pool
// of plain accounts serving as followers and profile-read subjects.
func buildMixedStore(tb testing.TB, shards, targets, accounts, seedEdges int) *Store {
	tb.Helper()
	store := NewStore(simclock.NewVirtualAtEpoch(), 1, WithShards(shards))
	store.Grow(accounts)
	params := UserParams{
		CreatedAt: simclock.Epoch.AddDate(-2, 0, 0),
		LastTweet: simclock.Epoch.AddDate(0, 0, -3),
		Statuses:  120, Friends: 200, Followers: 90,
		Bio:      true,
		Behavior: Behavior{RetweetRatio: 0.2, LinkRatio: 0.3},
	}
	for i := 0; i < accounts; i++ {
		store.MustCreateUser(params)
	}
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for t := 0; t < targets; t++ {
		target := UserID(t + 1)
		for e := 0; e < seedEdges; e++ {
			follower := UserID(targets + 1 + (t*seedEdges+e)%(accounts-targets))
			if err := store.AddFollower(target, follower, at); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return store
}

// benchmarkParallelMixed measures mixed read/write throughput under
// contention: `workers` goroutines split b.N ops — 50% follower pages, 20%
// profile lookups, 10% timeline synthesis, 20% follower appends — across 64
// targets. Uniform skew spreads ops over all targets (every shard active);
// hot skew sends 90% of ops to one target, the celebrity-audit worst case
// where striping can only help the bystanders. The shards=1 variants ARE
// the pre-striping store (one RWMutex for everything) and serve as the
// baseline the striped variants are compared against.
func benchmarkParallelMixed(b *testing.B, shards, workers int, hot bool) {
	const (
		targets   = 64
		accounts  = 8192
		seedEdges = 300
	)
	store := buildMixedStore(b, shards, targets, accounts, seedEdges)
	at := store.Now()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
			for i := 0; i < n; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				r := rng >> 33
				target := UserID(1 + r%targets)
				if hot && r%10 < 9 {
					target = 1
				}
				switch op := (r >> 8) % 10; {
				case op < 5: // follower page
					if _, err := store.FollowersPage(target, SeqNewest, 100); err != nil {
						b.Error(err)
						return
					}
				case op < 7: // profile materialisation
					if _, err := store.Profile(UserID(1 + (r>>12)%accounts)); err != nil {
						b.Error(err)
						return
					}
				case op < 8: // synthetic timeline
					if _, err := store.Timeline(UserID(1+targets+(r>>12)%(accounts-targets)), 10); err != nil {
						b.Error(err)
						return
					}
				default: // follower append (20% writes)
					follower := UserID(1 + targets + (r>>12)%(accounts-targets))
					if err := store.AddFollower(target, follower, at); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkParallelMixed is the striping contention suite. Compare
// shards=1 (the pre-shard global-lock store) against shards=16 at the same
// goroutine count:
//
//	go test ./internal/twitter -bench ParallelMixed -cpu 8
func BenchmarkParallelMixed(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		for _, skew := range []string{"uniform", "hot"} {
			for _, workers := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("shards=%d/skew=%s/goroutines=%d", shards, skew, workers), func(b *testing.B) {
					benchmarkParallelMixed(b, shards, workers, skew == "hot")
				})
			}
		}
	}
}

// TestBenchJSON emits BENCH_twitter.json with the striping suite's numbers
// when BENCH_JSON=<dir> is set (the CI bench step):
//
//	BENCH_JSON=. go test ./internal/twitter -run BenchJSON
//
// The shards=1 rows are the pre-shard baseline; the speedup criterion for
// the striped store is ParallelMixed uniform @8 goroutines, shards=16 vs
// shards=1.
func TestBenchJSON(t *testing.T) {
	if !benchjson.Enabled() {
		t.Skipf("set %s=<dir> to emit benchmark JSON", benchjson.EnvVar)
	}
	results := []benchjson.Result{
		benchjson.Measure("CreateUserPostGrow", BenchmarkCreateUserPostGrow),
		benchjson.Measure("FollowersPage/followers=50000", BenchmarkFollowersPage),
		benchjson.Measure("FollowersPageParallel/followers=50000", BenchmarkFollowersPageParallel),
		edgeBytesResult(t),
	}
	for _, shards := range []int{1, DefaultShards} {
		for _, skew := range []string{"uniform", "hot"} {
			for _, workers := range []int{1, 4, 8} {
				shards, skew, workers := shards, skew, workers
				results = append(results, benchjson.Measure(
					fmt.Sprintf("ParallelMixed/shards=%d/skew=%s/goroutines=%d", shards, skew, workers),
					func(b *testing.B) { benchmarkParallelMixed(b, shards, workers, skew == "hot") },
				))
			}
		}
	}
	path, err := benchjson.Write("twitter", results)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// edgeBytesResult measures the in-memory cost of the compact edge segments
// on the 50K-follower bench fixture and reports it as a bytes-per-edge
// metrics row. The acceptance budget is 12 bytes/edge (the struct encoding
// this replaced cost ~40); the delta-varint blocks land around 4-6.
func edgeBytesResult(t *testing.T) benchjson.Result {
	t.Helper()
	store, target := benchStore(t, 50000)
	edges, bytes := store.EdgeMemoryStats(target)
	if edges != 50000 {
		t.Fatalf("bench fixture has %d edges, want 50000", edges)
	}
	per := float64(bytes) / float64(edges)
	if per > 12 {
		t.Fatalf("edge storage at %.2f bytes/edge exceeds the 12-byte budget", per)
	}
	return benchjson.Result{
		Name: "EdgeSegmentMemory/followers=50000",
		N:    edges,
		Metrics: map[string]float64{
			"bytes_per_edge": per,
			"edge_bytes":     float64(bytes),
		},
	}
}
