package twitter

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// buildRichStore creates a store exercising every persisted facet: explicit
// names, follow edges, explicit tweets, materialised friends, synthetic
// records.
func buildRichStore(t *testing.T) (*Store, UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 99)
	target := store.MustCreateUser(UserParams{
		ScreenName: "target",
		CreatedAt:  simclock.Epoch.AddDate(-2, 0, 0),
	})
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < 500; i++ {
		id := store.MustCreateUser(UserParams{
			CreatedAt: simclock.Epoch.AddDate(-3, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -10),
			Statuses:  50, Friends: 20, Followers: 30,
			Bio: i%2 == 0, Location: i%3 == 0,
			Class:    ClassGenuine,
			Behavior: Behavior{RetweetRatio: 0.3, LinkRatio: 0.4, DuplicateRatio: 0.05},
		})
		if err := store.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Minute)
	}
	for i := 0; i < 20; i++ {
		if _, err := store.AppendTweet(target, Tweet{
			CreatedAt: simclock.Epoch.AddDate(0, 0, -20+i),
			Text:      "hello world",
			Source:    "web",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.SetFriends(target, []UserID{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	return store, target
}

// legacySnapshotOf flattens the current streamed (v5) encoding of store
// back into the single-struct layout pre-v5 writers produced, so the
// compatibility tests can forge old-version payloads from live state.
func legacySnapshotOf(t *testing.T, store *Store) snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(&buf)
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for got := 0; got < int(snap.RecordN); {
		var chunk []persistRecord
		if err := dec.Decode(&chunk); err != nil {
			t.Fatal(err)
		}
		snap.Records = append(snap.Records, chunk...)
		got += len(chunk)
	}
	for i := int64(0); i < snap.TargetN; i++ {
		var pt persistTarget
		if err := dec.Decode(&pt); err != nil {
			t.Fatal(err)
		}
		pt.Follows = followsFromStream(t, pt.EdgeStream, int(pt.EdgeN))
		pt.Removed = followsFromStream(t, pt.RemovedStream, int(pt.RemovedN))
		pt.EdgeN, pt.EdgeStream = 0, nil
		pt.RemovedN, pt.RemovedStream = 0, nil
		pt.FriendsSet = false
		snap.Targets = append(snap.Targets, pt)
	}
	snap.RecordN, snap.TargetN = 0, 0
	return snap
}

func followsFromStream(t *testing.T, data []byte, n int) []persistFollow {
	t.Helper()
	var out []persistFollow
	err := decodeEdgeStream(data, n, func(e segEdge) error {
		out = append(out, persistFollow{Follower: e.follower, At: e.at, Seq: e.seq})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	store, target := buildRichStore(t)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.UserCount() != store.UserCount() {
		t.Fatalf("user count %d vs %d", loaded.UserCount(), store.UserCount())
	}
	// Name index survives.
	id, err := loaded.LookupName("target")
	if err != nil || id != target {
		t.Fatalf("LookupName = %d, %v", id, err)
	}
	// Follower order survives exactly.
	a, _ := store.FollowersNewestFirst(target)
	b, _ := loaded.FollowersNewestFirst(target)
	if len(a) != len(b) {
		t.Fatalf("follower counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("follower order differs at %d", i)
		}
	}
	// Profiles (including synthesised names/bios) are identical.
	for _, probe := range []UserID{target, a[0], a[len(a)/2], a[len(a)-1]} {
		pa, err1 := store.Profile(probe)
		pb, err2 := loaded.Profile(probe)
		if err1 != nil || err2 != nil || pa != pb {
			t.Fatalf("profile %d differs:\n%+v\n%+v", probe, pa, pb)
		}
	}
	// Explicit timelines survive.
	ta, _ := store.Timeline(target, 50)
	tb, _ := loaded.Timeline(target, 50)
	if len(ta) != 20 || len(tb) != 20 {
		t.Fatalf("timeline lengths %d/%d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("timeline differs at %d", i)
		}
	}
	// Synthetic timelines stay deterministic across the round trip.
	sa, _ := store.Timeline(a[0], 10)
	sb, _ := loaded.Timeline(a[0], 10)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("synthetic timeline differs at %d", i)
		}
	}
	// Materialised friends survive.
	fa, ok := loaded.Friends(target)
	if !ok || len(fa) != 3 || fa[0] != 2 {
		t.Fatalf("friends = %v, %v", fa, ok)
	}
	// Ground truth survives.
	class, _ := loaded.TrueClass(a[0])
	if class != ClassGenuine {
		t.Fatalf("class = %v", class)
	}
	// The loaded store accepts new writes.
	extra := loaded.MustCreateUser(UserParams{})
	if err := loaded.AddFollower(target, extra, simclock.Epoch.Add(time.Hour)); err != nil {
		t.Fatalf("loaded store rejects new followers: %v", err)
	}
}

// TestSnapshotRoundTripWithChurn covers the version-2 facet: removal logs
// survive the round trip alongside the compacted live edge list.
func TestSnapshotRoundTripWithChurn(t *testing.T) {
	store, target := buildRichStore(t)
	chrono, _ := store.FollowersChronological(target)
	gone := []UserID{chrono[3], chrono[7], chrono[100]}
	if _, err := store.RemoveFollowers(target, gone, store.Now()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}

	a, _ := store.FollowersNewestFirst(target)
	b, _ := loaded.FollowersNewestFirst(target)
	if len(a) != len(b) || len(b) != 497 {
		t.Fatalf("follower counts: %d vs %d, want 497", len(a), len(b))
	}
	ra, _ := store.RemovedEdges(target)
	rb, _ := loaded.RemovedEdges(target)
	if len(ra) != len(rb) || len(rb) != 3 {
		t.Fatalf("removal logs: %d vs %d, want 3", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Follower != rb[i].Follower || !ra[i].At.Equal(rb[i].At) {
			t.Fatalf("removal log differs at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// The loaded store keeps churning.
	if _, err := loaded.RemoveFollowers(target, b[:1], loaded.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotResumesClock: an evolved population's snapshot carries its
// clock position, and reloading onto a fresh epoch clock fast-forwards it
// so growth/churn at the loaded store's Now() stays monotonic (the
// genpop -days → auditd -load -churn flow).
func TestSnapshotResumesClock(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 7)
	target := store.MustCreateUser(UserParams{ScreenName: "evolved"})
	follower := store.MustCreateUser(UserParams{})
	clock.Advance(27 * 24 * time.Hour) // 27 days of evolution
	if err := store.AddFollower(target, follower, store.Now()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	freshClock := simclock.NewVirtualAtEpoch()
	loaded, err := ReadSnapshot(&buf, freshClock)
	if err != nil {
		t.Fatal(err)
	}
	if got := freshClock.Now(); got.Before(clock.Now().Add(-time.Second)) {
		t.Fatalf("loaded clock at %v, want resumed near %v", got, clock.Now())
	}
	// New writes at the resumed Now() respect the monotonic invariant.
	extra := loaded.MustCreateUser(UserParams{})
	if err := loaded.AddFollower(target, extra, loaded.Now()); err != nil {
		t.Fatalf("post-load growth rejected: %v", err)
	}
	if _, err := loaded.RemoveFollowers(target, []UserID{extra}, loaded.Now()); err != nil {
		t.Fatalf("post-load churn rejected: %v", err)
	}
}

// TestSnapshotReadsVersion1 proves pre-churn snapshots (version 1, no
// Removed fields) still load after the dynamics fields landed.
func TestSnapshotReadsVersion1(t *testing.T) {
	store, target := buildRichStore(t)

	// Serialise the store exactly as a pre-churn build would have: the
	// single-struct gob payload with Version forced to 1 and no Removed
	// logs. Decoding a v1 stream into the current struct leaves the new
	// fields at their zero values, which is precisely the compatibility
	// contract under test.
	snap := legacySnapshotOf(t, store)
	snap.Version = 1
	snap.ClockUnix = 0
	for i := range snap.Targets {
		snap.Targets[i].Removed = nil
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadSnapshot(&v1, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if loaded.UserCount() != store.UserCount() {
		t.Fatalf("user count %d vs %d", loaded.UserCount(), store.UserCount())
	}
	a, _ := store.FollowersNewestFirst(target)
	b, _ := loaded.FollowersNewestFirst(target)
	if len(a) != len(b) {
		t.Fatalf("follower counts differ: %d vs %d", len(a), len(b))
	}
	if removed, _ := loaded.RemovedEdges(target); len(removed) != 0 {
		t.Fatalf("v1 snapshot grew a removal log: %d entries", len(removed))
	}
	// Pre-churn stores accept churn once loaded.
	if _, err := loaded.RemoveFollowers(target, b[:2], loaded.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotV3PreservesSeqAnchors covers the version-3 facet: edge
// sequence numbers — the anchors in-flight pagination cursors point at —
// survive the round trip exactly, for live and removed edges alike, and
// the per-target counter resumes above everything ever assigned so
// post-load follows cannot mint duplicate anchors.
func TestSnapshotV3PreservesSeqAnchors(t *testing.T) {
	store, target := buildRichStore(t)
	chrono, _ := store.FollowersChronological(target)
	// Churn so that seqs have gaps: remove two mid-list edges, refollow one.
	if _, err := store.RemoveFollowers(target, []UserID{chrono[10], chrono[20]}, store.Now()); err != nil {
		t.Fatal(err)
	}
	if err := store.AddFollower(target, chrono[10], store.Now()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}

	a, _ := store.FollowEdges(target)
	b, _ := loaded.FollowEdges(target)
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Follower != b[i].Follower {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if b[len(b)-1].Seq != 501 { // 500 original follows + 1 refollow
		t.Fatalf("refollow seq = %d, want 501", b[len(b)-1].Seq)
	}
	ra, _ := store.RemovedEdges(target)
	rb, _ := loaded.RemovedEdges(target)
	for i := range ra {
		if ra[i].Seq != rb[i].Seq {
			t.Fatalf("removed edge %d seq %d vs %d", i, ra[i].Seq, rb[i].Seq)
		}
	}
	// An in-flight cursor (anchor seq) resolves to the same edge on the
	// loaded store.
	pa, err1 := store.FollowersPage(target, 250, 1)
	pb, err2 := loaded.FollowersPage(target, 250, 1)
	if err1 != nil || err2 != nil || len(pa.IDs) != 1 || len(pb.IDs) != 1 || pa.IDs[0] != pb.IDs[0] {
		t.Fatalf("anchored page diverged after reload: %+v/%v vs %+v/%v", pa, err1, pb, err2)
	}
	// The counter resumes: a new follow gets seq 502, not a reused one.
	extra := loaded.MustCreateUser(UserParams{})
	if err := loaded.AddFollower(target, extra, loaded.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	eb, _ := loaded.FollowEdges(target)
	if got := eb[len(eb)-1].Seq; got != 502 {
		t.Fatalf("post-load follow seq = %d, want 502", got)
	}
}

// TestSnapshotReadsVersion2 proves pre-seq churn snapshots (version 2:
// removal logs and clock position, but no edge seqs) still load after the
// v3 bump: survivors get dense anchors reassigned in stored order and the
// counter resumes above them.
func TestSnapshotReadsVersion2(t *testing.T) {
	store, target := buildRichStore(t)
	chrono, _ := store.FollowersChronological(target)
	if _, err := store.RemoveFollowers(target, chrono[:5], store.Now()); err != nil {
		t.Fatal(err)
	}

	snap := legacySnapshotOf(t, store)
	snap.Version = 2
	for i := range snap.Targets {
		snap.Targets[i].SeqCounter = 0
		for j := range snap.Targets[i].Follows {
			snap.Targets[i].Follows[j].Seq = 0
		}
		for j := range snap.Targets[i].Removed {
			snap.Targets[i].Removed[j].Seq = 0
		}
	}
	var v2 bytes.Buffer
	if err := gob.NewEncoder(&v2).Encode(snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadSnapshot(&v2, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatalf("version-2 snapshot rejected: %v", err)
	}
	edges, _ := loaded.FollowEdges(target)
	if len(edges) != 495 {
		t.Fatalf("loaded %d edges, want 495", len(edges))
	}
	for i, e := range edges {
		if e.Seq != uint64(i+1) {
			t.Fatalf("edge %d reassigned seq %d, want %d", i, e.Seq, i+1)
		}
	}
	// Pagination works immediately over the reassigned anchors.
	page, err := loaded.FollowersPage(target, SeqNewest, 100)
	if err != nil || len(page.IDs) != 100 || page.Total != 495 {
		t.Fatalf("page over reassigned seqs = %d ids/%d total, %v", len(page.IDs), page.Total, err)
	}
	// And the counter starts above the densest survivor.
	extra := loaded.MustCreateUser(UserParams{})
	if err := loaded.AddFollower(target, extra, loaded.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	edges, _ = loaded.FollowEdges(target)
	if got := edges[len(edges)-1].Seq; got != 496 {
		t.Fatalf("post-load follow seq = %d, want 496", got)
	}
}

// TestSnapshotRejectsFutureVersion guards the other direction: a snapshot
// from a newer build fails loudly instead of loading half-understood state.
func TestSnapshotRejectsFutureVersion(t *testing.T) {
	store, _ := buildRichStore(t)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = snapshotVersion + 1
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&future, simclock.NewVirtualAtEpoch()); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot")), simclock.NewVirtualAtEpoch()); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotRejectsCorruptReferences(t *testing.T) {
	store, _ := buildRichStore(t)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Rebuild a snapshot with a dangling follower reference by loading,
	// then crafting: simpler — encode a minimal bad snapshot by hand.
	var bad bytes.Buffer
	badStore := NewStore(simclock.NewVirtualAtEpoch(), 1)
	badStore.MustCreateUser(UserParams{ScreenName: "a"})
	if err := badStore.WriteSnapshot(&bad); err != nil {
		t.Fatal(err)
	}
	// A valid snapshot loads fine; sanity check the negative helper below
	// actually exercises the validation path via version skew instead.
	loaded, err := ReadSnapshot(&bad, simclock.NewVirtualAtEpoch())
	if err != nil || loaded.UserCount() != 1 {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 5)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.UserCount() != 0 {
		t.Fatalf("count = %d", loaded.UserCount())
	}
}

// buildRichStoreSharded is buildRichStore with an explicit shard count,
// including churn so removal logs are covered.
func buildRichStoreSharded(t *testing.T, shards int) (*Store, UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 99, WithShards(shards))
	target := store.MustCreateUser(UserParams{
		ScreenName: "target",
		CreatedAt:  simclock.Epoch.AddDate(-2, 0, 0),
	})
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < 200; i++ {
		params := UserParams{
			CreatedAt: simclock.Epoch.AddDate(-3, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -10),
			Statuses:  50, Friends: 20, Followers: 30,
			Bio:      i%2 == 0,
			Class:    ClassFake,
			Behavior: Behavior{RetweetRatio: 0.3},
		}
		if i%10 == 0 {
			params.ScreenName = "member" + string(rune('a'+i/10))
		}
		id := store.MustCreateUser(params)
		if err := store.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Minute)
	}
	if _, err := store.AppendTweet(target, Tweet{CreatedAt: simclock.Epoch, Text: "t", Source: "web"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RemoveFollowers(target, []UserID{5, 9, 33}, store.Now()); err != nil {
		t.Fatal(err)
	}
	return store, target
}

// TestSnapshotBytesShardCountIndependent is the v4 canonical-encoding
// guarantee: the same logical state serialises to the same bytes no matter
// how many shards the store uses, and repeated writes are byte-stable (no
// map-iteration-order leakage).
func TestSnapshotBytesShardCountIndependent(t *testing.T) {
	var golden []byte
	for _, shards := range []int{1, 3, 16} {
		store, _ := buildRichStoreSharded(t, shards)
		var first, second bytes.Buffer
		if err := store.WriteSnapshot(&first); err != nil {
			t.Fatal(err)
		}
		if err := store.WriteSnapshot(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("shards=%d: two writes of the same store differ", shards)
		}
		if golden == nil {
			golden = first.Bytes()
		} else if !bytes.Equal(golden, first.Bytes()) {
			t.Fatalf("shards=%d: snapshot bytes differ from shards=1 encoding", shards)
		}
	}
}

// TestSnapshotLoadsAcrossShardCounts proves the format is shard-layout
// free: a snapshot written by a 16-shard store loads into 1- and 5-shard
// stores with identical observables, and reserialises to identical bytes.
func TestSnapshotLoadsAcrossShardCounts(t *testing.T) {
	store, target := buildRichStoreSharded(t, 16)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, shards := range []int{1, 5} {
		loaded, err := ReadSnapshot(bytes.NewReader(raw), simclock.NewVirtualAtEpoch(), WithShards(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if loaded.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", loaded.Shards(), shards)
		}
		if loaded.UserCount() != store.UserCount() {
			t.Fatalf("shards=%d: user count %d vs %d", shards, loaded.UserCount(), store.UserCount())
		}
		for id := UserID(1); int(id) <= store.UserCount(); id++ {
			pa, err1 := store.Profile(id)
			pb, err2 := loaded.Profile(id)
			if err1 != nil || err2 != nil || pa != pb {
				t.Fatalf("shards=%d: profile %d differs (%v, %v)", shards, id, err1, err2)
			}
		}
		if id, err := loaded.LookupName("membera"); err != nil || id != 2 {
			t.Fatalf("shards=%d: LookupName = %d, %v", shards, id, err)
		}
		ea, _ := store.FollowEdges(target)
		eb, _ := loaded.FollowEdges(target)
		if len(ea) != len(eb) {
			t.Fatalf("shards=%d: edge counts differ", shards)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("shards=%d: edge %d differs", shards, i)
			}
		}
		var again bytes.Buffer
		if err := loaded.WriteSnapshot(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Fatalf("shards=%d: reserialised snapshot differs from original bytes", shards)
		}
	}
}

// TestSnapshotRejectsDuplicateNameListIDs covers the corruption class the
// v4 list encoding makes possible (the legacy map's keys were structurally
// unique): one user carrying two explicit names must fail loading, not
// silently overwrite.
func TestSnapshotRejectsDuplicateNameListIDs(t *testing.T) {
	snap := snapshot{
		Version:  4,
		NameSeed: 1,
		Records:  make([]persistRecord, 3),
		NameList: []persistName{{ID: 2, Name: "a"}, {ID: 2, Name: "b"}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	_, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("duplicate NameList IDs loaded: %v", err)
	}
}
