package twitter

import "time"

// Durability hooks. The store itself stays storage-free: when an OpLog is
// attached (internal/wal), every mutating path reports the operation to the
// log from *inside* its critical section — after validation has passed, so
// only ops that will commit are logged, and before the mutation is visible,
// so the log's record order is a legal serialisation of the store's history.
// The per-op cost with no log attached is one nil check.
//
// Two ordering guarantees matter for replay determinism:
//
//   - Creates are logged under createMu before the account is published, so
//     the log's create order equals ID order, and any logged op referencing
//     an ID appears after that ID's create record.
//   - Per-target ops (follow/unfollow/purge/tweet/set-friends) are logged
//     under the target's shard lock, so per-target order in the log equals
//     the order the store applied them in. Cross-target interleaving in the
//     log may differ from wall-clock order, but no store observation can
//     tell: targets share no mutable state except the global counters, and
//     those are logged by value (tweet IDs) or reconstructed (edge seqs).

// OpLog receives every store mutation for durable logging. Each LogX call
// returns the op's log sequence number; Sync blocks until that LSN is
// durable under the log's fsync policy (the store calls it after releasing
// its locks, so slow fsyncs never hold up other writers). Implementations
// must be safe for concurrent use and must not call back into the Store —
// LogX runs with store locks held.
type OpLog interface {
	LogCreate(id UserID, p UserParams) (lsn uint64, err error)
	LogFollow(target, follower UserID, at time.Time) (lsn uint64, err error)
	LogUnfollow(target, follower UserID, at time.Time) (lsn uint64, err error)
	LogPurge(target UserID, followers []UserID, at time.Time) (lsn uint64, err error)
	LogTweet(tw Tweet) (lsn uint64, err error)
	LogSetFriends(id UserID, friends []UserID) (lsn uint64, err error)
	Sync(lsn uint64) error
}

// SetOpLog attaches (or, with nil, detaches) a durability log. Set it
// before the store sees concurrent use — typically right after recovery,
// before any server starts; there is no synchronisation on the field
// itself.
func (s *Store) SetOpLog(l OpLog) { s.oplog = l }

// opSync waits for lsn to become durable. lsn 0 means nothing was logged
// (no log attached, or the mutation was a structural no-op) and returns
// immediately. A mutation whose Sync fails HAS been applied in memory and
// logged; the error tells the caller its ack guarantee is gone, which for
// a durable deployment means the process should stop taking writes.
func (s *Store) opSync(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	return s.oplog.Sync(lsn)
}
