package twitter

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fakeproject/internal/drand"
	"fakeproject/internal/simclock"
)

// Lock striping. All platform state that belongs to a single account — its
// compact record, its explicit screen name, and (for targets) its follower
// edges, tweets, friend list and removal log — lives in exactly one shard,
// chosen by ID. Every single-account operation therefore takes exactly one
// shard lock, so auditd's worker pool and monitord's re-audit crawls only
// contend when they touch the *same* account, not whenever they touch the
// store at all. Twitter-shaped load is heavy-tailed (a few hot celebrity
// targets plus a long tail); striping serialises the hot target's shard and
// lets the tail proceed in parallel.
//
// Shard choice is round-robin over the dense ID space: UserID id lives in
// shard (id-1) % N at slot (id-1) / N. IDs are allocated sequentially, so
// every shard's record segment is itself dense and append-only — slot
// arithmetic replaces hashing, and a shard's slice never has holes.
//
// On top of the stripes, the read paths that dominate crawl traffic are
// lock-free:
//
//   - follower edges are published RCU-style (edgeseg.go): FollowersPage,
//     FollowerCount and the chronological views Load a frozen view and never
//     touch the shard mutex;
//   - the targets map is copy-on-write behind an atomic pointer (promotion
//     to target is rare; writers clone under the shard mutex);
//   - the record backing array is republished on reallocation, so fields
//     that are immutable once an account is committed (creation time, seed,
//     flags, class, behaviour percentages, the synthetic follower and friend
//     counters) can be read with no lock, gated by the committed count.
//
// The remaining global state is deliberately narrow:
//
//   - ID allocation is serialised by createMu (creation is a tiny critical
//     section: one append into the owning shard). Serialising creation keeps
//     the "IDs are dense, records have no holes" invariant that slot
//     arithmetic, snapshots and the API layer all rely on.
//   - users (the committed account count) is an atomic: existence checks by
//     readers and cross-shard writers (AddFollower validates its follower)
//     need no lock at all, because accounts are never deleted.
//   - tweetSeq is an atomic counter.
//   - the byName index is striped separately by name hash, because names
//     arrive hashed by content, not by ID.
//   - nameSeed is read-only after construction (seed derivation is a pure
//     function; see drand.SeedForN).

// DefaultShards is the shard count NewStore uses unless WithShards overrides
// it. Sixteen shards keep the worst-case all-shard operations (snapshots,
// batch regrouping) cheap while giving an 8-worker audit pool an expected
// collision rate low enough that shard locks are usually uncontended.
const DefaultShards = 16

// Option configures a Store at construction time.
type Option func(*storeConfig)

type storeConfig struct {
	shards int
}

// WithShards sets the lock-stripe shard count (minimum 1). A 1-shard store
// degenerates to the pre-striping single-lock store — the configuration the
// contention benchmarks use as their baseline. The shard count is a purely
// physical choice: observable state, iteration order and snapshot bytes are
// identical for any value.
func WithShards(n int) Option {
	return func(c *storeConfig) {
		if n >= 1 {
			c.shards = n
		}
	}
}

// targetMap is the published form of a shard's target set.
type targetMap = map[UserID]*targetData

// shard owns an interleaved segment of the account space: records at slot
// j hold UserID(j*N + index + 1). The struct is padded to two cache lines
// so that neighbouring shards' mutexes never share a line (a contended
// shard would otherwise slow its neighbours by pure false sharing).
type shard struct {
	mu   sync.RWMutex
	recs []record
	// recsPub is the shard's record backing array published for lock-free
	// reads: recs[:cap] at the moment the backing last moved. Readers must
	// check the committed count first (checkExists), then Load — creation
	// publishes a fresh backing before committing the count, so a committed
	// ID's slot is always in range of whatever backing the reader observes.
	// Only commit-immutable record fields may be read through it.
	recsPub atomic.Pointer[[]record]
	names   map[UserID]string
	// targets is copy-on-write: readers Load and index with no lock; writers
	// (holding mu) clone, insert and Store. Promotion to target is rare —
	// populations materialise a handful of audit targets — so clone cost is
	// noise, and every hot read path drops the shard lock in exchange.
	targets atomic.Pointer[targetMap]
	// ops counts operations routed to this shard (shard heat): one bump per
	// single-account operation and one per batch member. The counter is the
	// observability view of the striping argument above — under heavy-tailed
	// load the hot target's shard should visibly run ahead of the rest.
	// Internal bookkeeping passes (snapshot write/read) route around it via
	// shardOf, so the heat view reflects platform traffic only.
	ops atomic.Uint64
	_   [64]byte
}

// targetOf returns the materialised state of id, or nil. Lock-free: the
// targets map is copy-on-write.
func (sh *shard) targetOf(id UserID) *targetData {
	return (*sh.targets.Load())[id]
}

// target returns the materialised state of id, creating and publishing it
// if absent. Caller must hold sh.mu for writing.
func (sh *shard) target(id UserID) *targetData {
	if td := sh.targetOf(id); td != nil {
		return td
	}
	td := &targetData{}
	sh.putTarget(id, td)
	return td
}

// putTarget publishes td as id's materialised state via copy-on-write.
// Caller must hold sh.mu for writing (or otherwise be the only writer, as
// during a snapshot load).
func (sh *shard) putTarget(id UserID, td *targetData) {
	old := *sh.targets.Load()
	next := make(targetMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = td
	sh.targets.Store(&next)
}

// publishRecs republishes the shard's record backing for lock-free readers.
// Must be called whenever the backing array is (re)allocated, before the
// IDs landing in it are committed via the users counter.
func (sh *shard) publishRecs() {
	full := sh.recs[:cap(sh.recs)]
	sh.recsPub.Store(&full)
}

// nameStripe is one stripe of the explicit screen-name index.
type nameStripe struct {
	mu     sync.RWMutex
	byName map[string]UserID
	_      [64]byte
}

// Store is the platform state. It is safe for concurrent use; see the lock-
// striping notes above for how operations on different accounts avoid
// contending with each other.
type Store struct {
	clock    simclock.Clock
	nameSeed *drand.Source // read-only after construction

	shards []shard
	names  []nameStripe

	// createMu serialises account creation (ID allocation + record commit)
	// and quiesces it during snapshots and Grow.
	createMu sync.Mutex
	// users is the committed account count: IDs 1..users exist, always.
	users    atomic.Int64
	tweetSeq atomic.Int64

	// oplog, when non-nil, receives every mutation for durable logging
	// (see oplog.go). Read-mostly: set once before concurrent use.
	oplog OpLog
}

// NewStore creates an empty platform using the given clock and root seed
// (the seed drives name/bio/timeline synthesis).
func NewStore(clock simclock.Clock, seed uint64, opts ...Option) *Store {
	cfg := storeConfig{shards: DefaultShards}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Store{
		clock:    clock,
		nameSeed: drand.New(seed),
		shards:   make([]shard, cfg.shards),
		names:    make([]nameStripe, cfg.shards),
	}
	for i := range s.shards {
		s.shards[i].names = make(map[UserID]string)
		empty := make(targetMap)
		s.shards[i].targets.Store(&empty)
	}
	for i := range s.names {
		s.names[i].byName = make(map[string]UserID)
	}
	return s
}

// Shards reports the store's shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardOf returns the shard owning id without bumping its heat counter —
// the accessor for internal bookkeeping passes (snapshot write/read) that
// must leave the operator-facing shard-heat view untouched. Any id (even
// out of range or negative) maps to some shard; existence is checked
// separately.
func (s *Store) shardOf(id UserID) *shard {
	return &s.shards[uint64(id-1)%uint64(len(s.shards))]
}

// shardFor returns the shard owning id and counts the routing as one
// operation of shard heat. All platform-traffic paths come through here.
func (s *Store) shardFor(id UserID) *shard {
	sh := s.shardOf(id)
	sh.ops.Add(1)
	return sh
}

// ShardOps reports the per-shard operation counters (index = shard index).
// The store stays metrics-free; daemons export this as shard-heat gauges.
func (s *Store) ShardOps() []uint64 {
	out := make([]uint64, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].ops.Load()
	}
	return out
}

// slotFor returns id's record index within its owning shard.
func (s *Store) slotFor(id UserID) int {
	return int(uint64(id-1) / uint64(len(s.shards)))
}

// stripeFor returns the name-index stripe owning name (FNV-64a hash).
func (s *Store) stripeFor(name string) *nameStripe {
	return &s.names[drand.HashString(name)%uint64(len(s.names))]
}

// checkExists validates that id names a committed account. Accounts are
// never deleted, so this needs no lock: a positive answer stays true.
func (s *Store) checkExists(id UserID) error {
	if id < 1 || int64(id) > s.users.Load() {
		return fmt.Errorf("%w: %d", ErrUnknownUser, id)
	}
	return nil
}

// recordIn returns the record of id. sh must be id's owning shard and the
// caller must hold its lock (read or write). Existence is gated on the
// committed count, the store's single commit point: a record mid-create
// (appended to its shard but not yet published via users) is invisible
// here exactly as it is to checkExists, UserCount and snapshots.
func (s *Store) recordIn(sh *shard, id UserID) (*record, error) {
	if id < 1 || int64(id) > s.users.Load() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownUser, id)
	}
	slot := s.slotFor(id)
	if slot >= len(sh.recs) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownUser, id)
	}
	return &sh.recs[slot], nil
}

// recordRO returns a lock-free pointer to id's record, or nil if the
// published backing has not caught up (callers fall back to the locked
// path). The caller must have already validated id via checkExists — that
// load-order (committed count first, backing second) is what guarantees the
// observed backing covers the slot. Only commit-immutable fields may be
// read: createdAt, seed, flags, class, behaviour percentages, and the
// synthetic followers/friends counters. statuses and lastTweetAt mutate
// under the shard lock and are off limits.
func (s *Store) recordRO(sh *shard, id UserID) *record {
	hdr := sh.recsPub.Load()
	if hdr == nil {
		return nil
	}
	recs := *hdr
	slot := s.slotFor(id)
	if slot >= len(recs) {
		return nil
	}
	return &recs[slot]
}

// rlockAll read-locks every shard in index order (the one fixed multi-shard
// lock order in the package; see WriteSnapshot). Callers must pair it with
// runlockAll.
func (s *Store) rlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
}

// groupByShard partitions positions of ids by owning shard index so batch
// paths take each shard lock once. Unknown ids are dropped here (both
// callers skip them anyway); the committed count is read once so the whole
// batch shares one consistent existence cutoff.
func (s *Store) groupByShard(ids []UserID) [][]int32 {
	groups := make([][]int32, len(s.shards))
	limit := s.users.Load()
	for i, id := range ids {
		if id < 1 || int64(id) > limit {
			continue
		}
		si := uint64(id-1) % uint64(len(s.shards))
		s.shards[si].ops.Add(1)
		groups[si] = append(groups[si], int32(i))
	}
	return groups
}

// Grow pre-allocates capacity for n additional accounts, split across the
// shards that will actually receive them: shard i gets capacity for its
// share of the next n IDs, so a population build of n accounts after
// Grow(n) performs no per-create reallocation in any shard.
func (s *Store) Grow(n int) {
	if n <= 0 {
		return
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	// Round up: with round-robin placement no shard receives more than
	// ceil(n / shards) of the next n accounts.
	per := (n + len(s.shards) - 1) / len(s.shards)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if need := len(sh.recs) + per; need > cap(sh.recs) {
			recs := make([]record, len(sh.recs), need)
			copy(recs, sh.recs)
			sh.recs = recs
			sh.publishRecs()
		}
		sh.mu.Unlock()
	}
}
