package twitter

import (
	"fmt"
	"io"
	"os"

	"fakeproject/internal/simclock"
)

// Range snapshots: the partitioned multi-node deployment splits one
// canonical v5 snapshot across a ring of nodes. Every node loads the full
// record and name space (a record is ~40 bytes, so even a 10M-account
// universe costs a few hundred MB everywhere, and profiles, name lookups
// and the synthetic-friends permutation stay globally consistent), but the
// heavy per-target state — edge segments, explicit tweets, materialised
// friend lists, removal logs — is installed only for the accounts the node
// owns or replicates.
//
// The one observable that would leak a target's absence is its profile:
// profiles override the record's synthetic followers/friends counters with
// the materialised state when it exists. ReadSnapshotRange therefore folds
// those override counts into every target's record — uniformly, owned or
// not — so a profile served from any node is a pure function of record and
// name, byte-identical ring-wide. Folding is uniform on purpose: it keeps
// the record space identical across all holders of a range, which is what
// makes WriteSnapshotRange exports comparable byte-for-byte between a
// range's primary and its replica.

// WriteSnapshotRange serialises the store with all records and names but
// only the targets keep selects — the ownership-transfer stream a node
// exports for a range it holds. The output is a loadable v5 snapshot and
// is canonical: two stores holding the same records and the same kept
// targets produce identical bytes, regardless of what other targets each
// happens to hold.
func (s *Store) WriteSnapshotRange(w io.Writer, keep func(UserID) bool) error {
	if keep == nil {
		return s.writeSnapshot(w, nil, nil)
	}
	return s.writeSnapshot(w, nil, keep)
}

// ReadSnapshotRange reconstructs a partial Store from a snapshot: all
// records and names load, every target's override counts are folded into
// its record (see the package comment above), and only targets selected by
// keep get their heavy state installed. A nil keep folds every target and
// installs them all — the configuration the single-node baseline of the
// cross-topology differential tests loads, so its exports compare
// byte-for-byte with the partial nodes'.
func ReadSnapshotRange(r io.Reader, clock simclock.Clock, keep func(UserID) bool, opts ...Option) (*Store, error) {
	if keep == nil {
		keep = func(UserID) bool { return true }
	}
	return readSnapshot(r, clock, keep, opts...)
}

// LoadSnapshotRangeFile is ReadSnapshotRange over a snapshot file, with the
// operator-facing error translation of LoadSnapshotFile.
func LoadSnapshotRangeFile(path string, clock simclock.Clock, keep func(UserID) bool, opts ...Option) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("twitter: opening snapshot: %w", err)
	}
	defer f.Close()
	store, err := ReadSnapshotRange(f, clock, keep, opts...)
	if err != nil {
		return nil, fmt.Errorf(
			"twitter: snapshot %s is not loadable: %w (this build writes snapshot v%d and reads v%d through v%d; regenerate with genpop if the file predates v%d or is truncated)",
			path, err, snapshotVersion, minSnapshotVersion, snapshotVersion, minSnapshotVersion)
	}
	return store, nil
}

// foldTargetCounts rewrites pt's record so the profile the record alone
// produces matches the profile the materialised state would: the followers
// counter becomes the live edge count whenever an edge was ever
// materialised (the same "ever" rule profileIn applies — a target promoted
// by tweets or friends alone keeps its synthetic counter), and the friends
// counter becomes the materialised list's length whenever SetFriends ran.
func foldTargetCounts(store *Store, pt *persistTarget, version, n int) error {
	if pt.ID < 1 || int(pt.ID) > n {
		return fmt.Errorf("%w: target %d out of range", ErrBadSnapshot, pt.ID)
	}
	edgeN, removedN := int64(len(pt.Follows)), int64(len(pt.Removed))
	if version >= 5 {
		edgeN, removedN = pt.EdgeN, pt.RemovedN
	}
	id := UserID(pt.ID)
	rec := &store.shardOf(id).recs[store.slotFor(id)]
	if edgeN > 0 || removedN > 0 {
		rec.followers = int32(edgeN)
	}
	if pt.FriendsSet || pt.Friends != nil {
		rec.friends = int32(len(pt.Friends))
	}
	return nil
}
