package twitter

import (
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// TestShardPlacement pins the ownership arithmetic: dense IDs round-robin
// across shards, each shard's record segment filling in slot order.
func TestShardPlacement(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 1, WithShards(4))
	for i := 0; i < 13; i++ {
		store.MustCreateUser(UserParams{CreatedAt: simclock.Epoch})
	}
	wantLens := []int{4, 3, 3, 3} // ids 1,5,9,13 / 2,6,10 / 3,7,11 / 4,8,12
	for si := range store.shards {
		if got := len(store.shards[si].recs); got != wantLens[si] {
			t.Errorf("shard %d holds %d records, want %d", si, got, wantLens[si])
		}
	}
	for id := UserID(1); id <= 13; id++ {
		sh := store.shardFor(id)
		if sh != &store.shards[(int(id)-1)%4] {
			t.Errorf("id %d mapped to wrong shard", id)
		}
		if got := store.slotFor(id); got != (int(id)-1)/4 {
			t.Errorf("id %d slot %d, want %d", id, got, (int(id)-1)/4)
		}
	}
}

// TestWithShardsFloor ensures degenerate shard counts clamp to one shard
// rather than panicking on modulo-by-zero.
func TestWithShardsFloor(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		store := NewStore(simclock.NewVirtualAtEpoch(), 1, WithShards(n))
		if store.Shards() < 1 {
			t.Fatalf("WithShards(%d) produced %d shards", n, store.Shards())
		}
		store.MustCreateUser(UserParams{})
		if store.UserCount() != 1 {
			t.Fatalf("WithShards(%d): store unusable", n)
		}
	}
}

// TestProfilesRegroupedAcrossShards drives the batch path with inputs that
// interleave shards, repeat IDs and include unknowns: output must follow
// input order with unknowns silently dropped, exactly like the per-ID path.
func TestProfilesRegroupedAcrossShards(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 7, WithShards(4))
	for i := 0; i < 40; i++ {
		store.MustCreateUser(UserParams{CreatedAt: simclock.Epoch, Statuses: i})
	}
	ids := []UserID{40, 1, 999, 17, 17, -2, 4, 0, 23, 8}
	got := store.Profiles(ids)
	want := []UserID{40, 1, 17, 17, 4, 23, 8}
	if len(got) != len(want) {
		t.Fatalf("got %d profiles, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.ID != want[i] {
			t.Errorf("profile %d: ID %d, want %d", i, p.ID, want[i])
		}
		single, err := store.Profile(want[i])
		if err != nil || single != p {
			t.Errorf("batch profile %d differs from single lookup", want[i])
		}
	}
	counts := store.ClassCounts(ids)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(want) {
		t.Errorf("ClassCounts tallied %d accounts, want %d", total, len(want))
	}
}

// TestGrowPreSizesShards is the Grow fix's contract: after Grow(n), n
// account creations perform zero allocations per call in every shard —
// capacity was split across shards, not reserved in one global slab.
func TestGrowPreSizesShards(t *testing.T) {
	for _, shards := range []int{1, 5, 16} {
		store := NewStore(simclock.NewVirtualAtEpoch(), 1, WithShards(shards))
		const n = 5000
		store.Grow(n + 100)
		params := UserParams{
			CreatedAt: simclock.Epoch,
			LastTweet: simclock.Epoch.Add(-time.Hour),
			Statuses:  10, Friends: 100, Followers: 50,
			Bio: true, Class: ClassGenuine,
			Behavior: Behavior{RetweetRatio: 0.25},
		}
		if avg := testing.AllocsPerRun(n, func() {
			store.MustCreateUser(params)
		}); avg != 0 {
			t.Errorf("shards=%d: CreateUser after Grow allocates %.2f times per call, want 0", shards, avg)
		}
	}
}

// TestGrowNonPositive ensures Grow tolerates the degenerate sizes callers
// produce (empty populations, already-counted remainders).
func TestGrowNonPositive(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 1)
	store.Grow(0)
	store.Grow(-5)
	if id := store.MustCreateUser(UserParams{}); id != 1 {
		t.Fatalf("id = %d", id)
	}
}
