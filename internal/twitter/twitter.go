// Package twitter implements the simulated Twitter platform the reproduction
// runs against: users, tweets and chronologically ordered follow edges.
//
// Design constraints, in order of importance:
//
//  1. Follow edges of a target account are stored oldest-first and exposed
//     newest-first through the API layer, reproducing the behaviour the paper
//     verifies in Section IV-B ("all the new entries in all the lists of
//     followers were always added at the end").
//  2. Populations reach hundreds of thousands of follower accounts, so
//     follower profiles are stored as compact fixed-size records (~40 bytes)
//     and their screen names, bios and timelines are synthesised
//     deterministically from a per-user seed on demand. Follow edges are
//     delta-varint-encoded segments (edgeseg.go), a few bytes per edge
//     instead of a 40-byte struct, so follower lists scale to the ROADMAP's
//     10M-account populations.
//  3. Everything is reproducible from a single root seed and a virtual clock.
//  4. The store is lock-striped (see shard.go): state is sharded by account
//     ID so concurrent audits of different targets never serialise on a
//     global lock. Operations on a single account take one shard lock;
//     batch paths regroup their inputs per shard; snapshots lock all shards
//     in index order. The crawl-dominant reads — follower pages, follower
//     counts, the materialised friends list — are lock-free on top: edges
//     and friends are published RCU-style and read from frozen views.
//
// The ground-truth archetype of every account (genuine / inactive / fake) is
// retained in the store but deliberately NOT exposed through the API layer:
// analytics must infer it from observable features, exactly like their
// real-world counterparts. Evaluation code reads it via TrueClass.
package twitter

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"fakeproject/internal/simclock"
)

// UserID identifies an account. IDs are dense, assigned sequentially from 1.
type UserID int64

// TweetID identifies a tweet.
type TweetID int64

// Class is the ground-truth archetype of an account, used to build synthetic
// populations and to score classifiers. It is never exposed via the API.
type Class uint8

// Account archetypes. Start at 1 so the zero value is distinguishable as
// "unclassified" (Uber style guide: start enums at one).
const (
	// ClassGenuine is an authentic, engaged account ("someone who is
	// engaging with the platform - producing and sharing content").
	ClassGenuine Class = iota + 1
	// ClassInactive is an authentic but dormant account: never tweeted or
	// last tweet older than 90 days (the definition shared by the Fake
	// Project engine and Socialbakers).
	ClassInactive
	// ClassFake is an account created to inflate follower counts.
	ClassFake
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassGenuine:
		return "genuine"
	case ClassInactive:
		return "inactive"
	case ClassFake:
		return "fake"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Behavior summarises the timeline of an account as coarse ratios in [0,1].
// Timelines are synthesised to match these ratios; the API's extended lookup
// payload exposes them (see DESIGN.md §5 "Extended lookup payloads").
type Behavior struct {
	// RetweetRatio is the fraction of the account's tweets that are retweets.
	RetweetRatio float64
	// LinkRatio is the fraction of tweets carrying a URL.
	LinkRatio float64
	// SpamRatio is the fraction of tweets containing spam phrases
	// ("diet", "make money", "work from home", ...).
	SpamRatio float64
	// DuplicateRatio is the fraction of tweets that are exact duplicates of
	// another tweet of the same account.
	DuplicateRatio float64
}

// User carries the profile fields of an account as the API exposes them.
type User struct {
	ID         UserID
	ScreenName string
	Name       string
	CreatedAt  time.Time
	Bio        string
	Location   string
	URL        string
	// DefaultProfileImage reports whether the account still shows the
	// default "egg" avatar (a Socialbakers fake criterion).
	DefaultProfileImage bool
	Protected           bool
	Verified            bool
}

// Profile is the denormalised view of an account returned by users/lookup:
// profile fields plus counters plus the last-tweet timestamp (real Twitter
// embeds the last status in the user object) plus behaviour ratios.
type Profile struct {
	User
	FollowersCount int
	FriendsCount   int
	StatusesCount  int
	// LastTweetAt is the time of the most recent tweet; zero if the account
	// has never tweeted.
	LastTweetAt time.Time
	Behavior    Behavior
}

// HasNeverTweeted reports whether the account has no statuses at all.
func (p Profile) HasNeverTweeted() bool { return p.StatusesCount == 0 }

// FollowerFriendRatio returns followers/friends, the signal StatusPeople's
// founder calls the most meaningful one ("fake accounts tend to follow a lot
// of people but don't have many followers"). Returns +Inf-free semantics:
// if friends is zero, returns float64(followers).
func (p Profile) FollowerFriendRatio() float64 {
	if p.FriendsCount == 0 {
		return float64(p.FollowersCount)
	}
	return float64(p.FollowersCount) / float64(p.FriendsCount)
}

// Tweet is a single status.
type Tweet struct {
	ID        TweetID
	Author    UserID
	CreatedAt time.Time
	Text      string
	IsRetweet bool
	HasLink   bool
	// IsReply reports whether the tweet is a reply to another account.
	IsReply  bool
	Mentions int
	Hashtags int
	// Source is the posting client ("web", "mobile", "api").
	Source string
}

// Follow is a directed follow edge with its creation time.
type Follow struct {
	Follower UserID
	At       time.Time
	// Seq is the edge's per-target sequence number, assigned monotonically
	// at append time and never reused. It anchors pagination: a crawl
	// resumed at a seq lands on the same edge no matter how many followers
	// joined or were purged in between. Removal-log entries keep the seq
	// the edge had while alive (0 for edges loaded from pre-seq snapshots).
	Seq uint64
}

// SeqNewest is the FollowersPage anchor requesting the newest edge — the
// "no anchor yet" sentinel a first page starts from.
const SeqNewest = ^uint64(0)

// flag bits packed into record.flags.
const (
	flagDefaultImage = 1 << iota
	flagHasBio
	flagHasLocation
	flagProtected
	flagVerified
	flagHasURL
)

// record is the compact storage form of a synthetic account (~40 bytes).
type record struct {
	createdAt   int64 // unix seconds
	lastTweetAt int64 // unix seconds; 0 = never tweeted
	statuses    int32
	friends     int32
	followers   int32 // synthetic count for non-target accounts
	seed        uint32
	flags       uint8
	class       uint8
	retweetPct  uint8 // 0..100
	linkPct     uint8
	spamPct     uint8
	dupPct      uint8
}

func (r *record) has(flag uint8) bool { return r.flags&flag != 0 }

// targetData is the rich state kept only for target accounts (the handful of
// accounts whose follower lists are actually materialised).
type targetData struct {
	// edges is the live follower list in compact segment form (edgeseg.go):
	// chronological, strictly increasing Seq, published RCU-style so pages
	// and counts read it with no shard lock. Edge times are stored at unix-
	// second resolution (the resolution snapshots always had), so the
	// follow-side monotonicity contract is per-second.
	edges  edgeList
	tweets []Tweet // chronological: oldest first
	// friends is the materialised friend list, newest first, published as a
	// frozen slice so the Feistel friends path reads it lock-free. nil until
	// SetFriends runs; a pointer to a nil slice records "set to empty".
	friends atomic.Pointer[[]UserID]
	// removed logs unfollow/purge events in removal order (the ground truth
	// the monitoring subsystem replays against), at full time resolution.
	// The live follower list is always the survivors: removals rewrite the
	// edge segments.
	removed []Follow
	// seq is the last edge sequence number handed out for this target.
	// Removals never decrement it, so seqs are unique for a target's
	// lifetime and the segments stay sorted by Seq.
	seq uint64
}

// UserParams configures account creation. Zero values are meaningful
// (no bio, no tweets, zero friends...).
type UserParams struct {
	ScreenName string // empty = synthesised deterministically from the ID
	Name       string
	CreatedAt  time.Time
	LastTweet  time.Time // zero = never tweeted
	Statuses   int
	Friends    int
	// Followers is the *synthetic* follower count for non-target accounts;
	// for targets the materialised edge list overrides it.
	Followers           int
	Bio                 bool // whether the account filled in a bio
	Location            bool // whether the account filled in a location
	URL                 bool
	DefaultProfileImage bool
	Protected           bool
	Verified            bool
	Class               Class
	Behavior            Behavior
}

// ErrUnknownUser reports an operation on a user ID that does not exist.
var ErrUnknownUser = errors.New("twitter: unknown user")

// ErrUnknownName reports a screen-name lookup miss.
var ErrUnknownName = errors.New("twitter: unknown screen name")

// ErrNotMonotonic reports a follow edge older than the current newest edge.
var ErrNotMonotonic = errors.New("twitter: follow time must be monotonically non-decreasing")

// ErrDuplicateName reports a screen name registered twice.
var ErrDuplicateName = errors.New("twitter: duplicate screen name")

func pct(f float64) uint8 {
	// NaN (a 0/0 behaviour ratio upstream) must map to 0 explicitly:
	// uint8(NaN*100 + 0.5) is platform-defined in Go.
	if math.IsNaN(f) || f <= 0 {
		return 0
	}
	if f >= 1 {
		return 100
	}
	return uint8(f*100 + 0.5)
}

// CreateUser adds an account and returns its ID. A failed creation (duplicate
// explicit name) consumes no ID: the name is checked before allocation, so
// IDs stay dense.
func (s *Store) CreateUser(p UserParams) (UserID, error) {
	id, lsn, err := s.createUser(p)
	if err != nil {
		return 0, err
	}
	return id, s.opSync(lsn)
}

func (s *Store) createUser(p UserParams) (UserID, uint64, error) {
	var flags uint8
	if p.DefaultProfileImage {
		flags |= flagDefaultImage
	}
	if p.Bio {
		flags |= flagHasBio
	}
	if p.Location {
		flags |= flagHasLocation
	}
	if p.Protected {
		flags |= flagProtected
	}
	if p.Verified {
		flags |= flagVerified
	}
	if p.URL {
		flags |= flagHasURL
	}
	var lastTweet int64
	if !p.LastTweet.IsZero() {
		lastTweet = p.LastTweet.Unix()
	}
	created := p.CreatedAt
	if created.IsZero() {
		created = s.clock.Now()
	}

	s.createMu.Lock()
	defer s.createMu.Unlock()
	var stripe *nameStripe
	if p.ScreenName != "" {
		stripe = s.stripeFor(p.ScreenName)
		stripe.mu.RLock()
		_, dup := stripe.byName[p.ScreenName]
		stripe.mu.RUnlock()
		if dup {
			return 0, 0, fmt.Errorf("%w: %q", ErrDuplicateName, p.ScreenName)
		}
	}
	id := UserID(s.users.Load() + 1)
	rec := record{
		createdAt:   created.Unix(),
		lastTweetAt: lastTweet,
		statuses:    int32(p.Statuses),
		friends:     int32(p.Friends),
		followers:   int32(p.Followers),
		seed:        uint32(s.nameSeed.SeedForN("user", int64(id))),
		flags:       flags,
		class:       uint8(p.Class),
		retweetPct:  pct(p.Behavior.RetweetRatio),
		linkPct:     pct(p.Behavior.LinkRatio),
		spamPct:     pct(p.Behavior.SpamRatio),
		dupPct:      pct(p.Behavior.DuplicateRatio),
	}
	// Log before the account is published: the log's create order equals ID
	// order, and CreatedAt is logged resolved so replay never re-reads the
	// clock.
	var lsn uint64
	if l := s.oplog; l != nil {
		logged := p
		logged.CreatedAt = created
		var err error
		if lsn, err = l.LogCreate(id, logged); err != nil {
			return 0, 0, fmt.Errorf("twitter: logging create: %w", err)
		}
	}
	// Creation is serialised and IDs are dense, so the owning shard's next
	// free slot is exactly this ID's slot: a plain append commits it. If the
	// append moves the backing array, the new backing is republished for
	// lock-free readers before the users counter commits the ID.
	sh := s.shardFor(id)
	sh.mu.Lock()
	oldCap := cap(sh.recs)
	sh.recs = append(sh.recs, rec)
	if cap(sh.recs) != oldCap {
		sh.publishRecs()
	}
	if p.ScreenName != "" {
		sh.names[id] = p.ScreenName
	}
	sh.mu.Unlock()
	// Publish existence only after the record is committed, and the name
	// only after that: LookupName never yields an ID whose profile is not
	// yet readable.
	s.users.Add(1)
	if stripe != nil {
		stripe.mu.Lock()
		stripe.byName[p.ScreenName] = id
		stripe.mu.Unlock()
	}
	return id, lsn, nil
}

// MustCreateUser is CreateUser for generator code paths where the only
// possible error is a programmer mistake (duplicate explicit name).
func (s *Store) MustCreateUser(p UserParams) UserID {
	id, err := s.CreateUser(p)
	if err != nil {
		panic(err)
	}
	return id
}

// UserCount returns the number of accounts in the store.
func (s *Store) UserCount() int {
	return int(s.users.Load())
}

// ScreenName returns the screen name of id, synthesising one if the account
// was created without an explicit name.
func (s *Store) ScreenName(id UserID) (string, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return s.screenNameIn(sh, id)
}

// screenNameIn resolves id's screen name within its owning shard; the
// caller must hold sh's lock.
func (s *Store) screenNameIn(sh *shard, id UserID) (string, error) {
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return "", err
	}
	if name, ok := sh.names[id]; ok {
		return name, nil
	}
	return synthScreenName(uint64(rec.seed)), nil
}

// LookupName resolves an explicit screen name to a user ID.
// Synthetic (auto-generated) names are not indexed.
func (s *Store) LookupName(name string) (UserID, error) {
	stripe := s.stripeFor(name)
	stripe.mu.RLock()
	id, ok := stripe.byName[name]
	stripe.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	return id, nil
}

// TrueClass returns the ground-truth archetype of id (evaluation only).
func (s *Store) TrueClass(id UserID) (Class, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return 0, err
	}
	return Class(rec.class), nil
}

// Profile materialises the full lookup view of an account.
func (s *Store) Profile(id UserID) (Profile, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return s.profileIn(sh, id)
}

// profileIn materialises id's profile within its owning shard; the caller
// must hold sh's lock. Everything a profile needs — record, explicit name,
// materialised follower count — lives in the same shard, so a profile is a
// single-shard read.
func (s *Store) profileIn(sh *shard, id UserID) (Profile, error) {
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return Profile{}, err
	}
	name, err := s.screenNameIn(sh, id)
	if err != nil {
		return Profile{}, err
	}
	followers := int(rec.followers)
	friends := int(rec.friends)
	if td := sh.targetOf(id); td != nil {
		// Only a follower list that was ever materialised overrides the
		// synthetic counter. Targets promoted by SetFriends/AppendTweet
		// alone keep their synthetic count — promotion must not zero a
		// profile's followers (that corrupted FollowerFriendRatio, the
		// paper's headline criterion).
		if v := td.edges.view(); v.ever {
			followers = v.total
		}
		if fl := td.friends.Load(); fl != nil {
			friends = len(*fl)
		}
	}
	var lastTweet time.Time
	if rec.lastTweetAt != 0 {
		lastTweet = time.Unix(rec.lastTweetAt, 0).UTC()
	}
	p := Profile{
		User: User{
			ID:                  id,
			ScreenName:          name,
			CreatedAt:           time.Unix(rec.createdAt, 0).UTC(),
			DefaultProfileImage: rec.has(flagDefaultImage),
			Protected:           rec.has(flagProtected),
			Verified:            rec.has(flagVerified),
		},
		FollowersCount: followers,
		FriendsCount:   friends,
		StatusesCount:  int(rec.statuses),
		LastTweetAt:    lastTweet,
		Behavior: Behavior{
			RetweetRatio:   float64(rec.retweetPct) / 100,
			LinkRatio:      float64(rec.linkPct) / 100,
			SpamRatio:      float64(rec.spamPct) / 100,
			DuplicateRatio: float64(rec.dupPct) / 100,
		},
	}
	p.Name = humanName(uint64(rec.seed))
	if rec.has(flagHasBio) {
		p.Bio = synthBio(uint64(rec.seed))
	}
	if rec.has(flagHasLocation) {
		p.Location = synthLocation(uint64(rec.seed))
	}
	if rec.has(flagHasURL) {
		p.URL = "http://example.com/" + name
	}
	return p, nil
}

// Profiles materialises several accounts at once (the users/lookup shape).
// Unknown IDs are skipped, mirroring the real API's behaviour of silently
// dropping unknown users from the response. The batch is regrouped per
// shard so each shard lock is taken once, however the input interleaves
// across shards; output order follows input order regardless.
func (s *Store) Profiles(ids []UserID) []Profile {
	profiles := make([]Profile, len(ids))
	ok := make([]bool, len(ids))
	for si, group := range s.groupByShard(ids) {
		if len(group) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, i := range group {
			if p, err := s.profileIn(sh, ids[i]); err == nil {
				profiles[i], ok[i] = p, true
			}
		}
		sh.mu.RUnlock()
	}
	out := profiles[:0]
	for i := range profiles {
		if ok[i] {
			out = append(out, profiles[i])
		}
	}
	return out
}

// AddFollower appends a follow edge (follower -> target) at time at.
// Edges must arrive in non-decreasing time order; this is the invariant the
// Section IV-B experiment verifies from the outside.
//
// This is the one mutation that touches two accounts; only the target's
// shard is locked. The follower's existence check is lock-free (accounts
// are never deleted), so followers landing on different targets in
// different shards proceed fully in parallel.
func (s *Store) AddFollower(target, follower UserID, at time.Time) error {
	lsn, err := s.addFollower(target, follower, at)
	if err != nil {
		return err
	}
	return s.opSync(lsn)
}

func (s *Store) addFollower(target, follower UserID, at time.Time) (uint64, error) {
	if err := s.checkExists(target); err != nil {
		return 0, err
	}
	if err := s.checkExists(follower); err != nil {
		return 0, err
	}
	sh := s.shardFor(target)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	td := sh.target(target)
	// Segments store unix seconds, so the monotonicity contract is per-
	// second: an edge may not be older than the newest edge's second.
	atUnix := at.Unix()
	if last, ok := td.edges.view().newestAt(); ok && atUnix < last {
		return 0, fmt.Errorf("%w: %v before %v", ErrNotMonotonic, at, unixUTC(last))
	}
	var lsn uint64
	if l := s.oplog; l != nil {
		var err error
		if lsn, err = l.LogFollow(target, follower, at); err != nil {
			return 0, fmt.Errorf("twitter: logging follow: %w", err)
		}
	}
	td.seq++
	td.edges.append(segEdge{follower: int64(follower), at: atUnix, seq: td.seq})
	return lsn, nil
}

// FollowerCount returns the number of followers of id: the materialised edge
// count for targets that ever held an edge, the synthetic counter otherwise.
// Lock-free: the edge view and the record's commit-immutable synthetic
// counter are both published for reads (the users/show count path).
func (s *Store) FollowerCount(id UserID) (int, error) {
	if err := s.checkExists(id); err != nil {
		return 0, err
	}
	sh := s.shardFor(id)
	if td := sh.targetOf(id); td != nil {
		if v := td.edges.view(); v.ever {
			return v.total, nil
		}
	}
	if rec := s.recordRO(sh, id); rec != nil {
		return int(rec.followers), nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return 0, err
	}
	return int(rec.followers), nil
}

// FollowersChronological returns a copy of the follower IDs of target in
// follow order (oldest first). Non-target accounts yield an empty list.
// Lock-free: decoded from a frozen edge view.
func (s *Store) FollowersChronological(target UserID) ([]UserID, error) {
	if err := s.checkExists(target); err != nil {
		return nil, err
	}
	td := s.shardFor(target).targetOf(target)
	if td == nil {
		return nil, nil
	}
	v := td.edges.view()
	out := make([]UserID, v.total)
	i := 0
	v.forEach(func(e segEdge) bool {
		out[i] = UserID(e.follower)
		i++
		return true
	})
	return out, nil
}

// FollowersNewestFirst returns a copy of the follower IDs of target with the
// most recent follower first — the order the Twitter API exposes.
func (s *Store) FollowersNewestFirst(target UserID) ([]UserID, error) {
	chrono, err := s.FollowersChronological(target)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(chrono)-1; i < j; i, j = i+1, j-1 {
		chrono[i], chrono[j] = chrono[j], chrono[i]
	}
	return chrono, nil
}

// FollowerPage is one edge-anchored page of a target's follower list.
type FollowerPage struct {
	// IDs holds up to the requested limit of follower IDs, newest first.
	IDs []UserID
	// NextSeq is the sequence number of the next (older) edge to serve,
	// or 0 when the page reached the oldest surviving edge.
	NextSeq uint64
	// Total is the live follower count observed under the same lock as
	// the page.
	Total int
}

// FollowersPage returns up to limit follower IDs of target in newest-first
// order (the order the API exposes), starting from the newest edge whose
// sequence number is <= fromSeq (pass SeqNewest for the first page). Edges
// are anchored, not counted: new followers arriving mid-crawl get higher
// seqs and never shift a resumed page, and a purge that removes the
// anchored edge itself simply lands the page on the next older survivor —
// duplicates and skips of stable edges are structurally impossible. A
// fromSeq below every surviving edge (all older edges purged, or the list
// exhausted) yields an empty page with NextSeq 0, never an error.
//
// The page is served from a frozen edge view with no shard lock (the
// celebrity-crawl hot path: a hot target's pages proceed while its writer
// holds the shard mutex). Segments are sorted by Seq, so the anchor is
// found by binary search over sealed block bounds: each page costs
// O(log blocks + limit) plus one block decode per 512 edges served.
// limit <= 0 yields an empty page.
func (s *Store) FollowersPage(target UserID, fromSeq uint64, limit int) (FollowerPage, error) {
	if err := s.checkExists(target); err != nil {
		return FollowerPage{}, err
	}
	td := s.shardFor(target).targetOf(target)
	if td == nil {
		return FollowerPage{}, nil
	}
	v := td.edges.view()
	page := FollowerPage{Total: v.total}
	if limit <= 0 || v.total == 0 {
		return page, nil
	}
	newest := v.locate(fromSeq)
	if newest < 0 {
		return page, nil
	}
	if n := newest + 1; limit > n { // n = servable edges
		limit = n
	}
	page.IDs = make([]UserID, limit)
	v.fillNewestFirst(newest, page.IDs)
	if rest := newest - limit; rest >= 0 {
		page.NextSeq = v.seqAt(rest)
	}
	return page, nil
}

// RemoveFollowers deletes the follow edges of the given followers from
// target's list, preserving the chronological order of the survivors, and
// logs each removal at time at (the unfollow instant). Followers not present
// in the list are ignored. It returns how many edges were removed.
//
// This is the platform mutation behind churn: organic unfollows, fake-
// follower purges, suspension sweeps. Removal times must be monotonically
// non-decreasing across calls, mirroring the follow-side invariant.
func (s *Store) RemoveFollowers(target UserID, followers []UserID, at time.Time) (int, error) {
	n, lsn, err := s.removeFollowers(target, followers, at, false)
	if err != nil {
		return n, err
	}
	return n, s.opSync(lsn)
}

func (s *Store) removeFollowers(target UserID, followers []UserID, at time.Time, single bool) (int, uint64, error) {
	if err := s.checkExists(target); err != nil {
		return 0, 0, err
	}
	sh := s.shardFor(target)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	td := sh.targetOf(target)
	if td == nil || len(followers) == 0 {
		return 0, 0, nil
	}
	v := td.edges.view()
	if v.total == 0 {
		return 0, 0, nil
	}
	if n := len(td.removed); n > 0 && at.Before(td.removed[n-1].At) {
		return 0, 0, fmt.Errorf("%w: removal at %v before %v", ErrNotMonotonic, at, td.removed[n-1].At)
	}
	// Logged before the scan, so a removal that matches nothing still costs
	// a record; replaying it is the same no-op, so determinism holds.
	var lsn uint64
	if l := s.oplog; l != nil {
		var err error
		if single {
			lsn, err = l.LogUnfollow(target, followers[0], at)
		} else {
			lsn, err = l.LogPurge(target, followers, at)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("twitter: logging removal: %w", err)
		}
	}
	drop := make(map[UserID]struct{}, len(followers))
	for _, f := range followers {
		drop[f] = struct{}{}
	}
	// Rewrite the survivors into freshly sealed canonical segments and
	// publish them as one new view; readers mid-crawl keep the old view.
	var sealer edgeSealer
	removed := 0
	v.forEach(func(e segEdge) bool {
		if _, gone := drop[UserID(e.follower)]; gone {
			// Each follower is removed at most once (edge lists hold one
			// edge per follower); further matches are genuine duplicates.
			delete(drop, UserID(e.follower))
			td.removed = append(td.removed, Follow{Follower: UserID(e.follower), At: at, Seq: e.seq})
			removed++
			return true
		}
		sealer.add(e)
		return true
	})
	if removed > 0 {
		td.edges.v.Store(sealer.finish(true))
	}
	return removed, lsn, nil
}

// Unfollow deletes a single follow edge at time at. It reports whether the
// edge existed.
func (s *Store) Unfollow(target, follower UserID, at time.Time) (bool, error) {
	n, lsn, err := s.removeFollowers(target, []UserID{follower}, at, true)
	if err != nil {
		return n > 0, err
	}
	return n > 0, s.opSync(lsn)
}

// RemovedEdges returns a copy of target's removal log (unfollow events in
// removal order). Evaluation/monitoring only; the API layer never exposes it.
func (s *Store) RemovedEdges(target UserID) ([]Follow, error) {
	sh := s.shardFor(target)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if _, err := s.recordIn(sh, target); err != nil {
		return nil, err
	}
	td := sh.targetOf(target)
	if td == nil {
		return nil, nil
	}
	return append([]Follow(nil), td.removed...), nil
}

// RemovedCount returns how many follow edges target has lost to churn.
func (s *Store) RemovedCount(target UserID) (int, error) {
	sh := s.shardFor(target)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if _, err := s.recordIn(sh, target); err != nil {
		return 0, err
	}
	td := sh.targetOf(target)
	if td == nil {
		return 0, nil
	}
	return len(td.removed), nil
}

// FollowEdges returns a copy of the raw follow edges of target, oldest
// first, decoded lock-free from a frozen edge view (times at unix-second
// resolution, the segments' storage resolution).
func (s *Store) FollowEdges(target UserID) ([]Follow, error) {
	if err := s.checkExists(target); err != nil {
		return nil, err
	}
	td := s.shardFor(target).targetOf(target)
	if td == nil {
		return nil, nil
	}
	v := td.edges.view()
	if v.total == 0 {
		return nil, nil
	}
	out := make([]Follow, 0, v.total)
	v.forEach(func(e segEdge) bool {
		out = append(out, Follow{Follower: UserID(e.follower), At: unixUTC(e.at), Seq: e.seq})
		return true
	})
	return out, nil
}

// IsTarget reports whether id has materialised state (lock-free).
func (s *Store) IsTarget(id UserID) bool {
	return s.shardFor(id).targetOf(id) != nil
}

// EdgeMemoryStats reports target's live edge count and the bytes its
// in-memory segment storage occupies (sealed payload + block headers +
// decoded tail). The bytes-per-edge benchmark row divides the two.
func (s *Store) EdgeMemoryStats(target UserID) (edges, bytes int) {
	td := s.shardOf(target).targetOf(target)
	if td == nil {
		return 0, 0
	}
	v := td.edges.view()
	return v.total, v.memBytes()
}

// AppendTweet records an explicit tweet for a target account and updates its
// counters. Tweets must be appended in chronological order.
func (s *Store) AppendTweet(author UserID, tw Tweet) (Tweet, error) {
	out, lsn, err := s.appendTweet(author, tw, 0)
	if err != nil {
		return Tweet{}, err
	}
	return out, s.opSync(lsn)
}

// RestoreTweet reinstates a tweet exactly as logged — ID included — during
// WAL replay. Unlike AppendTweet it allocates no ID, so a replayed timeline
// is identical to the one the log recorded; the global tweet counter is
// advanced past the reinstated ID so post-replay tweets never collide.
func (s *Store) RestoreTweet(tw Tweet) error {
	if tw.ID == 0 {
		return fmt.Errorf("twitter: RestoreTweet needs an explicit tweet ID")
	}
	_, lsn, err := s.appendTweet(tw.Author, tw, tw.ID)
	if err != nil {
		return err
	}
	return s.opSync(lsn)
}

// appendTweet commits tw for author. forceID 0 assigns the next global
// tweet ID; a nonzero forceID reinstates a logged ID (RestoreTweet).
func (s *Store) appendTweet(author UserID, tw Tweet, forceID TweetID) (Tweet, uint64, error) {
	sh := s.shardFor(author)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, err := s.recordIn(sh, author)
	if err != nil {
		return Tweet{}, 0, err
	}
	td := sh.target(author)
	if n := len(td.tweets); n > 0 && tw.CreatedAt.Before(td.tweets[n-1].CreatedAt) {
		return Tweet{}, 0, fmt.Errorf("%w: tweet at %v before %v", ErrNotMonotonic, tw.CreatedAt, td.tweets[n-1].CreatedAt)
	}
	if forceID != 0 {
		tw.ID = forceID
		for {
			cur := s.tweetSeq.Load()
			if int64(forceID) <= cur || s.tweetSeq.CompareAndSwap(cur, int64(forceID)) {
				break
			}
		}
	} else {
		tw.ID = TweetID(s.tweetSeq.Add(1))
	}
	tw.Author = author
	// Logged with the assigned ID: global IDs are handed out in arrival
	// order, which need not match the per-target log order replay runs in,
	// so replay must reinstate IDs rather than re-allocate them.
	var lsn uint64
	if l := s.oplog; l != nil {
		var lerr error
		if lsn, lerr = l.LogTweet(tw); lerr != nil {
			return Tweet{}, 0, fmt.Errorf("twitter: logging tweet: %w", lerr)
		}
	}
	td.tweets = append(td.tweets, tw)
	rec.statuses++
	if tw.CreatedAt.Unix() > rec.lastTweetAt {
		rec.lastTweetAt = tw.CreatedAt.Unix()
	}
	return tw, lsn, nil
}

// Timeline returns up to max tweets of the account, most recent first.
// Target accounts return their stored tweets; synthetic accounts get a
// deterministic timeline generated from their behaviour record. max <= 0
// returns an empty slice.
func (s *Store) Timeline(id UserID, max int) ([]Tweet, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return nil, err
	}
	if max <= 0 {
		return nil, nil
	}
	if td := sh.targetOf(id); td != nil && len(td.tweets) > 0 {
		n := len(td.tweets)
		if max > n {
			max = n
		}
		out := make([]Tweet, max)
		for i := 0; i < max; i++ {
			out[i] = td.tweets[n-1-i] // newest first
		}
		return out, nil
	}
	return synthTimeline(id, rec, max), nil
}

// SetFriends materialises the friend list of an account (newest first, the
// order friends/ids exposes) and updates its friends counter. Only a handful
// of accounts (targets, gold-standard members) carry materialised lists;
// for all others the API layer synthesises a deterministic list matching the
// synthetic friends counter.
func (s *Store) SetFriends(id UserID, friends []UserID) error {
	lsn, err := s.setFriends(id, friends)
	if err != nil {
		return err
	}
	return s.opSync(lsn)
}

func (s *Store) setFriends(id UserID, friends []UserID) (uint64, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := s.recordIn(sh, id); err != nil {
		return 0, err
	}
	var lsn uint64
	if l := s.oplog; l != nil {
		var err error
		if lsn, err = l.LogSetFriends(id, friends); err != nil {
			return 0, fmt.Errorf("twitter: logging friends: %w", err)
		}
	}
	// Publish a frozen copy; the record's synthetic friends counter stays
	// commit-immutable (readers derive the count from the list instead), so
	// the lock-free count path never races a counter write.
	td := sh.target(id)
	fl := append([]UserID(nil), friends...)
	td.friends.Store(&fl)
	return lsn, nil
}

// Friends returns the materialised friend list of id (newest first) and
// whether one exists. Lock-free: the list is published as a frozen slice.
func (s *Store) Friends(id UserID) ([]UserID, bool) {
	td := s.shardFor(id).targetOf(id)
	if td == nil {
		return nil, false
	}
	fl := td.friends.Load()
	if fl == nil || *fl == nil {
		return nil, false
	}
	return append([]UserID(nil), (*fl)...), true
}

// FriendsCount returns the friends (following) count of id: the length of
// the materialised list if SetFriends ever ran, the synthetic counter
// otherwise. Lock-free (the Feistel friends path sizes its permutation
// from this without touching the shard mutex).
func (s *Store) FriendsCount(id UserID) (int, error) {
	if err := s.checkExists(id); err != nil {
		return 0, err
	}
	sh := s.shardFor(id)
	if td := sh.targetOf(id); td != nil {
		if fl := td.friends.Load(); fl != nil {
			return len(*fl), nil
		}
	}
	if rec := s.recordRO(sh, id); rec != nil {
		return int(rec.friends), nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, err := s.recordIn(sh, id)
	if err != nil {
		return 0, err
	}
	return int(rec.friends), nil
}

// Now exposes the store's clock time (convenience for generators).
func (s *Store) Now() time.Time { return s.clock.Now() }

// Clock returns the clock the store was built with.
func (s *Store) Clock() simclock.Clock { return s.clock }

// ClassCounts tallies the ground-truth classes of the given accounts,
// used by evaluation and the genpop CLI. Like Profiles, the batch is
// regrouped so each shard lock is taken once.
func (s *Store) ClassCounts(ids []UserID) map[Class]int {
	out := make(map[Class]int, 4)
	for si, group := range s.groupByShard(ids) {
		if len(group) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, i := range group {
			rec, err := s.recordIn(sh, ids[i])
			if err != nil {
				continue
			}
			out[Class(rec.class)]++
		}
		sh.mu.RUnlock()
	}
	return out
}
