package twitter

import (
	"math"
	"testing"

	"fakeproject/internal/simclock"
)

// TestSyntheticTweetIDsCelebrityScale: accounts past 2^20 statuses used to
// overflow the 20-bit age field into the author bits, colliding with the
// next author's ID space. The 32-bit field covers any int32 status count.
func TestSyntheticTweetIDsCelebrityScale(t *testing.T) {
	s, _ := newTestStore()
	mk := func() UserID {
		return mkUser(t, s, UserParams{
			CreatedAt: simclock.Epoch.AddDate(-8, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -1),
			Statuses:  3 << 20, // ~3.1M statuses, Katy Perry scale
		})
	}
	a, b := mk(), mk()
	ta, err := s.Timeline(a, 50)
	if err != nil || len(ta) != 50 {
		t.Fatalf("timeline a: %d tweets, %v", len(ta), err)
	}
	tb, err := s.Timeline(b, 50)
	if err != nil || len(tb) != 50 {
		t.Fatalf("timeline b: %d tweets, %v", len(tb), err)
	}
	seen := make(map[TweetID]bool)
	for _, tw := range append(ta, tb...) {
		// The author must be recoverable from the high bits: an ID that
		// leaked age bits upward would claim the wrong author.
		if got := UserID(tw.ID >> 32); got != tw.Author {
			t.Fatalf("tweet %d: author bits decode to %d, want %d", tw.ID, got, tw.Author)
		}
		if seen[tw.ID] {
			t.Fatalf("tweet ID %d collides across celebrity accounts", tw.ID)
		}
		seen[tw.ID] = true
	}
	// Newest-first means strictly decreasing IDs per author (the max_id
	// pagination contract).
	for i := 1; i < len(ta); i++ {
		if ta[i].ID >= ta[i-1].ID {
			t.Fatalf("tweet IDs not strictly decreasing: %d then %d", ta[i-1].ID, ta[i].ID)
		}
	}
}

// TestSyntheticTimelineSpreadsClampedTimestamps: an account that tweeted
// far more often than its lifetime's seconds-per-status budget used to get
// every overflowing tweet stamped createdAt+1 — a pile-up spike. Capped
// gaps must instead spread the tail across the remaining span.
func TestSyntheticTimelineSpreadsClampedTimestamps(t *testing.T) {
	s, _ := newTestStore()
	created := simclock.Epoch.Add(-200 * 60 * 1e9) // 200 minutes of life
	id := mkUser(t, s, UserParams{
		CreatedAt: created,
		LastTweet: simclock.Epoch.Add(-60 * 1e9),
		Statuses:  10000, // mean gap clamps to the 30s floor, span has ~400 slots
	})
	tl, err := s.Timeline(id, 3000)
	if err != nil {
		t.Fatal(err)
	}
	floorTime := created.Add(1e9) // createdAt + 1s
	atFloor := 0
	distinct := make(map[int64]bool, len(tl))
	for i, tw := range tl {
		if tw.CreatedAt.Before(floorTime) {
			t.Fatalf("tweet %d at %v predates the floor %v", i, tw.CreatedAt, floorTime)
		}
		if i > 0 && tw.CreatedAt.After(tl[i-1].CreatedAt) {
			t.Fatal("timeline must be newest first")
		}
		if tw.CreatedAt.Equal(floorTime) {
			atFloor++
		}
		distinct[tw.CreatedAt.Unix()] = true
	}
	// Old behaviour: thousands of tweets piled exactly on the floor. The
	// spread leaves at most a residual handful there...
	if atFloor > 10 {
		t.Fatalf("%d tweets piled on createdAt+1; clamp not spread", atFloor)
	}
	// ...and the tail occupies a healthy share of the available seconds.
	if len(distinct) < 1000 {
		t.Fatalf("only %d distinct timestamps across %d tweets", len(distinct), len(tl))
	}
}

// TestSyntheticTimelinePrefixStableAcrossDepths: Timeline(id, k) must be a
// timestamp-identical prefix of any deeper read — the gold-standard path
// reads 200 tweets while the API path reads up to 3,200, and the two views
// of the same tweet ID may not disagree on CreatedAt. (The gap cap that
// spreads clamped timestamps budgets by the account's total status count,
// never by the caller's max, precisely for this.)
func TestSyntheticTimelinePrefixStableAcrossDepths(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{
		CreatedAt: simclock.Epoch.Add(-200 * 60 * 1e9),
		LastTweet: simclock.Epoch.Add(-60 * 1e9),
		Statuses:  10000, // deep in clamp territory
	})
	shallow, err := s.Timeline(id, 200)
	if err != nil || len(shallow) != 200 {
		t.Fatalf("shallow read: %d tweets, %v", len(shallow), err)
	}
	deep, err := s.Timeline(id, 3000)
	if err != nil || len(deep) != 3000 {
		t.Fatalf("deep read: %d tweets, %v", len(deep), err)
	}
	for i := range shallow {
		if shallow[i] != deep[i] {
			t.Fatalf("tweet %d differs across read depths:\n%+v\n%+v", i, shallow[i], deep[i])
		}
	}
}

// TestPctNaNMapsToZero: uint8(NaN*100 + 0.5) is platform-defined in Go, so
// a 0/0 behaviour ratio must be pinned to 0 explicitly.
func TestPctNaNMapsToZero(t *testing.T) {
	if got := pct(math.NaN()); got != 0 {
		t.Fatalf("pct(NaN) = %d, want 0", got)
	}
	// And the boundary cases stay put.
	cases := map[float64]uint8{
		-0.5: 0, 0: 0, 0.004: 0, 0.005: 1, 0.5: 50, 1: 100, 1.7: 100,
		math.Inf(1): 100, math.Inf(-1): 0,
	}
	for in, want := range cases {
		if got := pct(in); got != want {
			t.Fatalf("pct(%v) = %d, want %d", in, got, want)
		}
	}
}

// TestProfileBehaviorNaNRatios: the NaN guard holds end to end — an
// account created with NaN ratios profiles as all-zero behaviour instead
// of platform-defined garbage.
func TestProfileBehaviorNaNRatios(t *testing.T) {
	s, _ := newTestStore()
	id := mkUser(t, s, UserParams{
		Behavior: Behavior{
			RetweetRatio:   math.NaN(),
			LinkRatio:      math.NaN(),
			SpamRatio:      math.NaN(),
			DuplicateRatio: math.NaN(),
		},
	})
	p, err := s.Profile(id)
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Behavior; b.RetweetRatio != 0 || b.LinkRatio != 0 || b.SpamRatio != 0 || b.DuplicateRatio != 0 {
		t.Fatalf("NaN ratios materialised as %+v, want zeros", p.Behavior)
	}
}
