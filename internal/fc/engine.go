package fc

import (
	"fmt"
	"sync"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/drand"
	"fakeproject/internal/features"
	"fakeproject/internal/ml"
	"fakeproject/internal/sampling"
	"fakeproject/internal/simclock"
	"fakeproject/internal/stats"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// EngineConfig tunes the FC audit pipeline.
type EngineConfig struct {
	// Level is the confidence level of the estimate (default 0.95).
	Level float64
	// Margin is the confidence interval half-width (default 0.01).
	// The defaults yield the paper's constant sample size of 9,604.
	Margin float64
	// Seed drives sampling.
	Seed uint64
	// NominalFollowers optionally maps screen names to the real-world
	// follower counts their scaled populations represent (report display).
	NominalFollowers map[string]int
	// Window, when positive, restricts sampling to the newest Window
	// followers — deliberately adopting the commercial tools' biased
	// scheme. The deployed engine uses 0 (whole list); the ablation study
	// uses this knob to show that the sampling scheme, not the
	// classifier, is what separates FC from the tools.
	Window int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.Margin == 0 {
		c.Margin = 0.01
	}
	return c
}

// Engine is the Fake Project analytics: open methodology, whole-list
// sampling, published criteria. It implements core.Auditor.
type Engine struct {
	client twitterapi.Client
	clock  simclock.Clock
	model  ml.Classifier
	set    features.Set
	cfg    EngineConfig
	src    *drand.Source
}

var _ core.Auditor = (*Engine)(nil)

// NewEngine assembles the engine from a trained classifier. The classifier
// must have been trained on the same feature set (see Train / TrainDefault).
func NewEngine(client twitterapi.Client, clock simclock.Clock, model ml.Classifier, set features.Set, cfg EngineConfig) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		client: client,
		clock:  clock,
		model:  model,
		set:    set,
		cfg:    cfg,
		src:    drand.New(cfg.Seed).Fork("fc-engine"),
	}
}

// trainedDefault memoises TrainDefault per seed: training is deterministic
// and the returned model is read-only at prediction time, so every
// simulation (and every auditd worker pool) built with the same seed can
// share one classifier instead of re-training a forest each time.
var trainedDefault struct {
	sync.Mutex
	bySeed map[uint64]trainResult
}

type trainResult struct {
	model ml.Classifier
	set   features.Set
}

// TrainDefault builds the deployed FC classifier: a random forest over the
// lookup-cost feature set, trained on a synthetic gold standard. It returns
// the model and the feature set to pass to NewEngine. Results are memoised
// per seed (training is deterministic and models are immutable once
// trained).
func TrainDefault(seed uint64) (ml.Classifier, features.Set, error) {
	trainedDefault.Lock()
	defer trainedDefault.Unlock()
	if cached, ok := trainedDefault.bySeed[seed]; ok {
		return cached.model, cached.set, nil
	}
	gold, err := BuildGoldStandard(1500, seed)
	if err != nil {
		return nil, features.Set{}, fmt.Errorf("building gold standard: %w", err)
	}
	set := features.LookupSet()
	data, err := gold.Dataset(set, false, false)
	if err != nil {
		return nil, features.Set{}, fmt.Errorf("extracting features: %w", err)
	}
	model, err := ml.TrainForest(data, ml.ForestConfig{Trees: 21, Seed: seed})
	if err != nil {
		return nil, features.Set{}, fmt.Errorf("training forest: %w", err)
	}
	if trainedDefault.bySeed == nil {
		trainedDefault.bySeed = make(map[uint64]trainResult)
	}
	trainedDefault.bySeed[seed] = trainResult{model: model, set: set}
	return model, set, nil
}

// Name implements core.Auditor.
func (e *Engine) Name() string { return "fakeproject-fc" }

// SampleSizeFor returns the engine's sample size for a population of n
// followers: the paper's constant 9,604 ("to be statistically sound, the
// sample size is always 9604"), capped at the population itself for small
// accounts (where the whole base is assessed outright).
func (e *Engine) SampleSizeFor(n int) int {
	size := stats.SampleSize(e.cfg.Level, e.cfg.Margin)
	if size > n {
		return n
	}
	return size
}

// Audit implements core.Auditor: fetch the complete follower list, sample
// uniformly, look the sample up, apply the inactivity rule then the
// classifier, and report percentages with confidence intervals.
func (e *Engine) Audit(screenName string) (core.Report, error) {
	sw := simclock.NewStopwatch(e.clock)
	callsBefore := e.client.Calls()

	target, err := e.client.UserByScreenName(screenName)
	if err != nil {
		return core.Report{}, fmt.Errorf("resolving %q: %w", screenName, err)
	}
	// Step 1: the complete list of followers (newest first, as the API
	// yields it; completeness is what makes the sample unbiased). In the
	// ablation configuration only the newest Window entries are fetched,
	// mimicking the surveyed tools.
	var ids []twitter.UserID
	var err2 error
	if e.cfg.Window > 0 {
		ids, err2 = twitterapi.FollowerIDsUpTo(e.client, target.ID, e.cfg.Window)
	} else {
		ids, err2 = twitterapi.AllFollowerIDs(e.client, target.ID)
	}
	if err2 != nil {
		return core.Report{}, fmt.Errorf("crawling followers of %q: %w", screenName, err2)
	}

	// Step 2: uniform sample over the whole list.
	n := e.SampleSizeFor(len(ids))
	idx := sampling.Uniform{}.Sample(len(ids), n, e.src)
	sample := sampling.Select(ids, idx)

	// Step 3: profiles of the sampled accounts.
	profiles, err := twitterapi.LookupMany(e.client, sample)
	if err != nil {
		return core.Report{}, fmt.Errorf("looking up sample of %q: %w", screenName, err)
	}

	// Step 4: inactivity rule first, classifier on the active remainder.
	now := e.clock.Now()
	var counts core.VerdictCounts
	for i := range profiles {
		ctx := features.Context{Profile: profiles[i], Now: now}
		switch {
		case core.IsDormant(profiles[i], now):
			counts.Inactive++
		case e.model.Predict(e.set.Extract(&ctx)) == ml.LabelFake:
			counts.Fake++
		default:
			counts.Genuine++
		}
	}

	report := core.Report{
		Tool:             e.Name(),
		Target:           target,
		NominalFollowers: e.nominal(screenName, target.FollowersCount),
		SampleSize:       len(profiles),
		Window:           0, // whole list
		HasInactiveClass: true,
		Elapsed:          sw.Elapsed(),
		APICalls:         e.client.Calls() - callsBefore,
		AssessedAt:       now,
		CILevel:          e.cfg.Level,
	}
	report.InactivePct, report.FakePct, report.GenuinePct = counts.Percentages()
	if total := counts.Total(); total > 0 {
		popSize := len(ids)
		ci := func(positives int) stats.Interval {
			p, err := stats.EstimateProportion(positives, total)
			if err != nil {
				return stats.Interval{}
			}
			return p.ConfidenceIntervalFinite(e.cfg.Level, popSize)
		}
		report.InactiveCI = ci(counts.Inactive)
		report.FakeCI = ci(counts.Fake)
		report.GenuineCI = ci(counts.Genuine)
	}
	return report, nil
}

func (e *Engine) nominal(screenName string, actual int) int {
	if n, ok := e.cfg.NominalFollowers[screenName]; ok && n > 0 {
		return n
	}
	return actual
}

// ClassifyProfile exposes the engine's per-account verdict (inactivity rule
// then classifier), used by evaluation code and examples.
func (e *Engine) ClassifyProfile(ctx *features.Context) string {
	if core.IsDormant(ctx.Profile, ctx.Now) {
		return "inactive"
	}
	if e.model.Predict(e.set.Extract(ctx)) == ml.LabelFake {
		return "fake"
	}
	return "genuine"
}

// Elapsed since an arbitrary instant on the engine's clock — convenience
// for harnesses measuring multi-audit batches.
func (e *Engine) Since(t time.Time) time.Duration { return e.clock.Now().Sub(t) }
