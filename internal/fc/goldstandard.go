// Package fc implements the Fake Project fake-follower classifier of
// Section III: a machine-learning engine trained on a gold standard of
// a-priori-known accounts, deployed behind a statistically sound audit
// pipeline (whole-list crawl, uniform 9,604-account sample, 95% confidence
// with ±1% interval).
package fc

import (
	"fmt"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/features"
	"fakeproject/internal/ml"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// GoldStandard is a labelled reference set of Twitter accounts "where fake
// followers, inactive, and genuine accounts were a priori known"
// (Section III). It lives in its own store so that training never touches
// audit populations.
type GoldStandard struct {
	Store *twitter.Store
	// Humans and Fakes are the account IDs per label. Humans are *active*
	// genuine accounts: the FC pipeline removes dormant accounts with the
	// inactivity rule before classification, so the classifier's job is
	// active-fake vs active-genuine.
	Humans []twitter.UserID
	Fakes  []twitter.UserID
	// Now is the observation instant all features are extracted at.
	Now time.Time
}

// BuildGoldStandard synthesises a balanced gold standard with n accounts per
// class (the Fake Project's reference set is of this order: ~2000 per
// class).
func BuildGoldStandard(n int, seed uint64) (*GoldStandard, error) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, seed)
	gen := population.NewGenerator(store, seed)

	// Two disjoint target accounts hold the two populations; the
	// generator's archetypes provide the class-conditional feature
	// distributions.
	humansTarget, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "goldstandard_humans",
		Followers:  n,
		Layout:     population.Layout{{Width: 0, Mix: population.Mix{Genuine: 1}}},
	})
	if err != nil {
		return nil, fmt.Errorf("building human half: %w", err)
	}
	fakesTarget, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "goldstandard_fakes",
		Followers:  n,
		Layout:     population.Layout{{Width: 0, Mix: population.Mix{Fake: 1}}},
	})
	if err != nil {
		return nil, fmt.Errorf("building fake half: %w", err)
	}
	humans, err := store.FollowersChronological(humansTarget)
	if err != nil {
		return nil, err
	}
	fakes, err := store.FollowersChronological(fakesTarget)
	if err != nil {
		return nil, err
	}
	return &GoldStandard{Store: store, Humans: humans, Fakes: fakes, Now: clock.Now()}, nil
}

// Context materialises the feature-extraction context of one account,
// optionally crawling its timeline and relationship lists (for class-B/C
// feature evaluation).
func (g *GoldStandard) Context(id twitter.UserID, withTimeline, withRelations bool) (*features.Context, error) {
	p, err := g.Store.Profile(id)
	if err != nil {
		return nil, err
	}
	ctx := &features.Context{Profile: p, Now: g.Now}
	if withTimeline {
		tl, err := g.Store.Timeline(id, 200)
		if err != nil {
			return nil, err
		}
		ctx.Timeline = tl
		ctx.TimelineCrawled = true
	}
	if withRelations {
		// Gold-standard accounts are procedural, so their relationship
		// lists are the deterministic synthetic ones; materialising them
		// here mirrors what a class-C crawl would fetch.
		src := drand.New(uint64(id) * 2654435761).Fork("friends")
		n := g.Store.UserCount()
		count := p.FriendsCount
		if count > n-1 {
			count = n - 1
		}
		seen := make(map[twitter.UserID]struct{}, count)
		for len(ctx.Friends) < count {
			cand := twitter.UserID(src.Int63n(int64(n)) + 1)
			if cand == id {
				continue
			}
			if _, dup := seen[cand]; dup {
				continue
			}
			seen[cand] = struct{}{}
			ctx.Friends = append(ctx.Friends, cand)
		}
	}
	return ctx, nil
}

// Dataset extracts the labelled design matrix under a feature set.
// withTimeline/withRelations control which crawls are simulated; features
// above the paid cost fall back as documented in the features package.
func (g *GoldStandard) Dataset(set features.Set, withTimeline, withRelations bool) (ml.Dataset, error) {
	d := ml.Dataset{FeatureNames: set.Names()}
	appendRows := func(ids []twitter.UserID, label int) error {
		for _, id := range ids {
			ctx, err := g.Context(id, withTimeline, withRelations)
			if err != nil {
				return fmt.Errorf("account %d: %w", id, err)
			}
			d.X = append(d.X, set.Extract(ctx))
			d.Y = append(d.Y, label)
		}
		return nil
	}
	if err := appendRows(g.Humans, ml.LabelHuman); err != nil {
		return ml.Dataset{}, err
	}
	if err := appendRows(g.Fakes, ml.LabelFake); err != nil {
		return ml.Dataset{}, err
	}
	return d, nil
}
