package fc

import (
	"fmt"

	"fakeproject/internal/features"
	"fakeproject/internal/ml"
	"fakeproject/internal/rules"
)

// MethodResult is one row of the Section III evaluation: a detection method
// scored on the gold standard, with its crawling cost.
type MethodResult struct {
	// Method is the algorithm's name.
	Method string
	// Kind distinguishes "rules" (single classification rules of
	// [13],[14],[15]) from "features" (feature-set classifiers of [8],[9])
	// and "fc" (the Fake Project's own classifiers).
	Kind string
	// Metrics is the pooled confusion matrix over cross-validation (for
	// classifiers) or the whole gold standard (for static rule sets).
	Metrics ml.ConfusionMatrix
	// CrawlCost is the estimated API calls per assessed account.
	CrawlCost float64
}

// EvaluateRuleSets scores the literature rule sets of [13], [14], [15] on
// the gold standard — the experiment that led the authors to conclude that
// "algorithms based on classification rules do not succeed in detecting the
// fakes in our reference dataset".
func EvaluateRuleSets(gold *GoldStandard) ([]MethodResult, error) {
	var out []MethodResult
	for _, set := range rules.AllSets() {
		var m ml.ConfusionMatrix
		for _, id := range gold.Humans {
			ctx, err := gold.Context(id, true, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", set.Name, err)
			}
			m.Add(boolLabel(set.Fake(ctx)), ml.LabelHuman)
		}
		for _, id := range gold.Fakes {
			ctx, err := gold.Context(id, true, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", set.Name, err)
			}
			m.Add(boolLabel(set.Fake(ctx)), ml.LabelFake)
		}
		out = append(out, MethodResult{
			Method:    set.Name,
			Kind:      "rules",
			Metrics:   m,
			CrawlCost: 1.01, // profile + one timeline page
		})
	}
	return out, nil
}

func boolLabel(fake bool) int {
	if fake {
		return ml.LabelFake
	}
	return ml.LabelHuman
}

// EvaluateFeatureSets cross-validates classifiers over the literature
// feature sets ([8] Stringhini, [9] Yang) and the Fake Project sets,
// reproducing the finding that "better results were achieved by relying on
// those features proposed by Academia for spam accounts detection".
func EvaluateFeatureSets(gold *GoldStandard, seed uint64) ([]MethodResult, error) {
	cases := []struct {
		set           features.Set
		kind          string
		withTimeline  bool
		withRelations bool
	}{
		{features.StringhiniSet(), "features", true, false},
		{features.YangSet(), "features", true, true},
		{features.ProfileSet(), "fc", false, false},
		{features.LookupSet(), "fc", false, false},
		{features.FullSet(), "fc", true, true},
	}
	var out []MethodResult
	for _, c := range cases {
		data, err := gold.Dataset(c.set, c.withTimeline, c.withRelations)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.set.Name, err)
		}
		trainer := func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainForest(d, ml.ForestConfig{Trees: 15, Seed: seed})
		}
		cv, err := ml.CrossValidate(5, trainer, data, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.set.Name, err)
		}
		out = append(out, MethodResult{
			Method:    "forest/" + c.set.Name,
			Kind:      c.kind,
			Metrics:   cv.Pooled(),
			CrawlCost: c.set.CrawlCost(),
		})
	}
	return out, nil
}

// EvaluateClassifiers cross-validates the three model families on the
// deployed (lookup-cost) feature set, the model-selection step behind
// TrainDefault.
func EvaluateClassifiers(gold *GoldStandard, seed uint64) ([]MethodResult, error) {
	set := features.LookupSet()
	data, err := gold.Dataset(set, false, false)
	if err != nil {
		return nil, err
	}
	trainers := []struct {
		name    string
		trainer ml.Trainer
	}{
		{"decision-tree", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainTree(d, ml.TreeConfig{Seed: seed})
		}},
		{"random-forest", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainForest(d, ml.ForestConfig{Trees: 21, Seed: seed})
		}},
		{"logistic-regression", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainLogReg(d, ml.LogRegConfig{Seed: seed})
		}},
	}
	var out []MethodResult
	for _, tr := range trainers {
		cv, err := ml.CrossValidate(5, tr.trainer, data, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tr.name, err)
		}
		out = append(out, MethodResult{
			Method:    tr.name + "/" + set.Name,
			Kind:      "fc",
			Metrics:   cv.Pooled(),
			CrawlCost: set.CrawlCost(),
		})
	}
	return out, nil
}
