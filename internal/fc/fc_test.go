package fc

import (
	"math"
	"testing"

	"fakeproject/internal/features"
	"fakeproject/internal/ml"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func smallGold(t *testing.T) *GoldStandard {
	t.Helper()
	gold, err := BuildGoldStandard(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	return gold
}

func TestGoldStandardBalanced(t *testing.T) {
	gold := smallGold(t)
	if len(gold.Humans) != 300 || len(gold.Fakes) != 300 {
		t.Fatalf("gold standard sizes %d/%d", len(gold.Humans), len(gold.Fakes))
	}
	for _, id := range gold.Humans {
		c, err := gold.Store.TrueClass(id)
		if err != nil || c != twitter.ClassGenuine {
			t.Fatalf("human %d has class %v (%v)", id, c, err)
		}
	}
	for _, id := range gold.Fakes {
		c, err := gold.Store.TrueClass(id)
		if err != nil || c != twitter.ClassFake {
			t.Fatalf("fake %d has class %v (%v)", id, c, err)
		}
	}
}

func TestGoldStandardDataset(t *testing.T) {
	gold := smallGold(t)
	set := features.LookupSet()
	d, err := gold.Dataset(set, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 600 || d.Positives() != 300 {
		t.Fatalf("dataset %d rows, %d positives", d.Len(), d.Positives())
	}
}

func TestGoldStandardContextWithCrawls(t *testing.T) {
	gold := smallGold(t)
	ctx, err := gold.Context(gold.Fakes[0], true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.TimelineCrawled {
		t.Fatal("timeline not crawled")
	}
	if len(ctx.Friends) == 0 {
		t.Fatal("friends not materialised for class-C features")
	}
}

func TestTrainDefaultSeparates(t *testing.T) {
	model, set, err := TrainDefault(7)
	if err != nil {
		t.Fatal(err)
	}
	// The trained model must reach high accuracy on a fresh gold standard
	// drawn from a different seed.
	fresh, err := BuildGoldStandard(300, 999)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fresh.Dataset(set, false, false)
	if err != nil {
		t.Fatal(err)
	}
	m := ml.Evaluate(model, d)
	if acc := m.Accuracy(); acc < 0.95 {
		t.Fatalf("hold-out accuracy = %.3f, want >= 0.95", acc)
	}
	if mcc := m.MCC(); mcc < 0.9 {
		t.Fatalf("hold-out MCC = %.3f, want >= 0.9", mcc)
	}
}

// engineFixture builds a small audited population plus an FC engine.
func engineFixture(t *testing.T, followers int, layout population.Layout) (*Engine, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 11)
	gen := population.NewGenerator(store, 11)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject",
		Followers:  followers,
		Layout:     layout,
	}); err != nil {
		t.Fatal(err)
	}
	model, set, err := TrainDefault(12)
	if err != nil {
		t.Fatal(err)
	}
	client := twitterapi.NewDirectClient(twitterapi.NewService(store), clock,
		twitterapi.ClientConfig{Tokens: 8})
	return NewEngine(client, clock, model, set, EngineConfig{Seed: 13}), clock
}

func TestSampleSizeForMatchesPaper(t *testing.T) {
	e, _ := engineFixture(t, 10, nil)
	if n := e.SampleSizeFor(41000000); n != 9604 {
		t.Fatalf("sample for Obama = %d, want the constant 9604", n)
	}
	if n := e.SampleSizeFor(70900); n != 9604 {
		t.Fatalf("sample for 70900 = %d, want 9604", n)
	}
	if n := e.SampleSizeFor(929); n != 929 {
		t.Fatalf("sample for 929 = %d, want the whole base", n)
	}
}

func TestAuditRecoversGroundTruth(t *testing.T) {
	truth := population.Mix{Inactive: 0.55, Fake: 0.15, Genuine: 0.30}
	e, _ := engineFixture(t, 30000, population.Layout{{Width: 0, Mix: truth}})
	report, err := e.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if report.SampleSize != 9604 {
		t.Fatalf("sample = %d", report.SampleSize)
	}
	if math.Abs(report.InactivePct-55) > 3 {
		t.Fatalf("inactive = %.1f%%, want ≈55%%", report.InactivePct)
	}
	if math.Abs(report.FakePct-15) > 3 {
		t.Fatalf("fake = %.1f%%, want ≈15%%", report.FakePct)
	}
	if math.Abs(report.GenuinePct-30) > 3 {
		t.Fatalf("genuine = %.1f%%, want ≈30%%", report.GenuinePct)
	}
	if !report.HasInactiveClass || report.Window != 0 {
		t.Fatalf("report shape: %+v", report)
	}
}

func TestAuditImmuneToPositionBias(t *testing.T) {
	// The same overall truth laid out adversarially (all junk hidden in
	// the oldest band) must yield the same FC verdict — the whole point of
	// whole-list uniform sampling.
	truth := population.Mix{Inactive: 0.5, Fake: 0.1, Genuine: 0.4}
	adversarial := population.Layout{
		{Width: 5000, Mix: population.Mix{Genuine: 1}},
		{Width: 0, Mix: population.Mix{Inactive: 0.6, Fake: 0.12, Genuine: 0.28}},
	}
	_ = truth
	e, _ := engineFixture(t, 30000, adversarial)
	report, err := e.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	wantInactive := (25000.0 * 0.6) / 30000 * 100
	if math.Abs(report.InactivePct-wantInactive) > 3 {
		t.Fatalf("inactive = %.1f%%, want ≈%.1f%% despite the adversarial layout",
			report.InactivePct, wantInactive)
	}
}

func TestAuditConfidenceIntervals(t *testing.T) {
	e, _ := engineFixture(t, 25000, population.Layout{
		{Width: 0, Mix: population.Mix{Inactive: 0.4, Fake: 0.2, Genuine: 0.4}},
	})
	report, err := e.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if report.CILevel != 0.95 {
		t.Fatalf("CI level = %v", report.CILevel)
	}
	for name, iv := range map[string]struct {
		lo, hi float64
		pct    float64
	}{
		"inactive": {report.InactiveCI.Lo, report.InactiveCI.Hi, report.InactivePct},
		"fake":     {report.FakeCI.Lo, report.FakeCI.Hi, report.FakePct},
		"genuine":  {report.GenuineCI.Lo, report.GenuineCI.Hi, report.GenuinePct},
	} {
		if iv.lo > iv.pct/100 || iv.hi < iv.pct/100 {
			t.Fatalf("%s CI [%v,%v] excludes the point estimate %v", name, iv.lo, iv.hi, iv.pct/100)
		}
		if width := iv.hi - iv.lo; width > 0.025 {
			t.Fatalf("%s CI width %v, want ≈±1%%", name, width)
		}
	}
}

func TestAuditUnknownTarget(t *testing.T) {
	e, _ := engineFixture(t, 10, nil)
	if _, err := e.Audit("nobody"); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func TestClassifyProfile(t *testing.T) {
	e, clock := engineFixture(t, 10, nil)
	now := clock.Now()
	dormant := &features.Context{Profile: twitter.Profile{}, Now: now}
	if got := e.ClassifyProfile(dormant); got != "inactive" {
		t.Fatalf("never-tweeted = %q", got)
	}
	bot := &features.Context{Profile: twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(0, -6, 0), DefaultProfileImage: true},
		FollowersCount: 5, FriendsCount: 2500, StatusesCount: 80,
		LastTweetAt: now.AddDate(0, 0, -1),
		Behavior:    twitter.Behavior{SpamRatio: 0.6, LinkRatio: 0.9, DuplicateRatio: 0.5, RetweetRatio: 0.5},
	}, Now: now}
	if got := e.ClassifyProfile(bot); got != "fake" {
		t.Fatalf("spam bot = %q", got)
	}
}

func TestEvaluateRuleSetsUnderperform(t *testing.T) {
	// Section III: rule sets "do not succeed in detecting the fakes",
	// while spam-detection feature sets do better.
	gold := smallGold(t)
	ruleResults, err := EvaluateRuleSets(gold)
	if err != nil {
		t.Fatal(err)
	}
	if len(ruleResults) != 3 {
		t.Fatalf("rule results = %d", len(ruleResults))
	}
	featResults, err := EvaluateFeatureSets(gold, 21)
	if err != nil {
		t.Fatal(err)
	}
	bestRule, bestFeat := 0.0, 0.0
	for _, r := range ruleResults {
		if mcc := r.Metrics.MCC(); mcc > bestRule {
			bestRule = mcc
		}
	}
	for _, r := range featResults {
		if r.Kind != "features" {
			continue
		}
		if mcc := r.Metrics.MCC(); mcc > bestFeat {
			bestFeat = mcc
		}
	}
	if bestFeat <= bestRule {
		t.Fatalf("feature sets (MCC %.3f) should beat rule sets (MCC %.3f)", bestFeat, bestRule)
	}
}

func TestEvaluateClassifiers(t *testing.T) {
	gold := smallGold(t)
	results, err := EvaluateClassifiers(gold, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("classifier results = %d", len(results))
	}
	for _, r := range results {
		if r.Metrics.Accuracy() < 0.9 {
			t.Fatalf("%s accuracy = %.3f, want >= 0.9 on the gold standard",
				r.Method, r.Metrics.Accuracy())
		}
	}
}

func TestOptimizedClassifierCostBenefit(t *testing.T) {
	// The cost-optimized (lookup-only) classifier must be drastically
	// cheaper than the full-feature one while staying nearly as accurate —
	// the Fake Project's central engineering claim.
	gold := smallGold(t)
	results, err := EvaluateFeatureSets(gold, 23)
	if err != nil {
		t.Fatal(err)
	}
	var lookup, full *MethodResult
	for i := range results {
		switch results[i].Method {
		case "forest/lookup":
			lookup = &results[i]
		case "forest/full":
			full = &results[i]
		}
	}
	if lookup == nil || full == nil {
		t.Fatalf("missing methods in %v", results)
	}
	if lookup.CrawlCost >= full.CrawlCost {
		t.Fatalf("lookup cost %.2f should be below full cost %.2f", lookup.CrawlCost, full.CrawlCost)
	}
	if lookup.Metrics.Accuracy() < full.Metrics.Accuracy()-0.05 {
		t.Fatalf("optimized accuracy %.3f sacrifices too much vs full %.3f",
			lookup.Metrics.Accuracy(), full.Metrics.Accuracy())
	}
}
