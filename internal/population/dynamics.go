package population

import (
	"fmt"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
)

// Dynamics: the paper's headline numbers are point-in-time snapshots, but
// its subjects are standing services auditing follower bases that drift
// while being measured (the ≈27-day Obama crawl of Section IV-B is the
// extreme case). The driver in this file evolves a target's follower base
// over virtual days — organic growth and churn, fake-follower purchase
// bursts, platform purge sweeps — and keeps a ground-truth log of every
// injected event, so the monitoring subsystem can be scored on how quickly
// each tool's verdict catches real change.

// ChurnKind labels one category of follower-base change.
type ChurnKind string

// Churn event kinds.
const (
	// ChurnOrganic is the daily background: new (mostly genuine) followers
	// arriving and a small fraction of existing ones leaving.
	ChurnOrganic ChurnKind = "organic"
	// ChurnPurchase is a bought-followers burst landing at the newest end
	// of the list (the Section II-A anecdote, as an event).
	ChurnPurchase ChurnKind = "purchase"
	// ChurnPurge is a platform sweep removing a fraction of the fake
	// followers (Twitter's periodic spam-account suspensions).
	ChurnPurge ChurnKind = "purge"
)

// ChurnEvent schedules one discrete event on a script day (1-based).
type ChurnEvent struct {
	// Day is the script day the event fires on (1 = first AdvanceDay call).
	Day int
	// Kind selects the event type.
	Kind ChurnKind
	// Size is the number of accounts a purchase burst adds.
	Size int
	// Fraction is the share of fake followers a purge removes (0..1].
	Fraction float64
}

// ChurnScript describes the full evolution plan for one target.
type ChurnScript struct {
	// DailyGrowth is the organic arrivals per day.
	DailyGrowth int
	// DailyChurnRate is the fraction of current followers that organically
	// unfollow each day (e.g. 0.001 = 0.1%/day).
	DailyChurnRate float64
	// GrowthMix is the class mix of organic arrivals; the zero value
	// defaults to a healthy base (88% genuine, 10% inactive, 2% fake).
	GrowthMix Mix
	// Events are the discrete bursts and purges, in any order.
	Events []ChurnEvent
}

func (s ChurnScript) growthMix() Mix {
	if s.GrowthMix.Sum() == 0 {
		return Mix{Inactive: 0.10, Fake: 0.02, Genuine: 0.88}
	}
	return s.GrowthMix.Normalised()
}

// DefaultChurnScript returns the standard monitoring scenario for a target
// with n followers, shared by the cmd/auditd -churn demo and the
// experiments monitoring replay so both exercise the same drama: organic
// growth of n/150 per day (min 20) with 0.1% daily churn, a fake-follower
// purchase on day 9 big enough to trip default burst rules (15% of n, min
// 1,500), and a half purge sweep on day 18.
func DefaultChurnScript(n int) ChurnScript {
	growth := n / 150
	if growth < 20 {
		growth = 20
	}
	burst := 15 * n / 100
	if burst < 1500 {
		burst = 1500
	}
	return ChurnScript{
		DailyGrowth:    growth,
		DailyChurnRate: 0.001,
		Events: []ChurnEvent{
			{Day: 9, Kind: ChurnPurchase, Size: burst},
			{Day: 18, Kind: ChurnPurge, Fraction: 0.5},
		},
	}
}

// AppliedEvent is the ground-truth record of one applied change.
type AppliedEvent struct {
	// Day is the script day (1-based) the change was applied on.
	Day int
	// At is the platform time of the change.
	At time.Time
	// Kind is the change category.
	Kind ChurnKind
	// Added and Removed count the follow edges gained and lost.
	Added, Removed int
}

// Driver evolves one target's follower base according to a script. It never
// touches the clock: callers advance virtual time between days, so the
// driver composes with whatever schedule the monitoring loop runs on.
type Driver struct {
	gen    *Generator
	store  *twitter.Store
	target twitter.UserID
	script ChurnScript
	src    *drand.Source
	day    int
	log    []AppliedEvent
}

// NewDriver plans the evolution of target inside gen's store.
func NewDriver(gen *Generator, target twitter.UserID, script ChurnScript) *Driver {
	return &Driver{
		gen:    gen,
		store:  gen.Store(),
		target: target,
		script: script,
		src:    gen.src.ForkN("dynamics", int64(target)),
	}
}

// Day returns how many days have been applied so far.
func (d *Driver) Day() int { return d.day }

// Log returns a copy of every applied ground-truth event so far.
func (d *Driver) Log() []AppliedEvent { return append([]AppliedEvent(nil), d.log...) }

// AdvanceDay applies one script day at the store's current time: organic
// growth and churn first, then any events scheduled for that day. It
// returns the events applied on this day.
func (d *Driver) AdvanceDay() ([]AppliedEvent, error) {
	d.day++
	now := d.store.Now()
	var applied []AppliedEvent

	organic := AppliedEvent{Day: d.day, At: now, Kind: ChurnOrganic}
	if d.script.DailyGrowth > 0 {
		if err := d.gen.GrowFollowers(d.target, d.script.DailyGrowth, d.script.growthMix()); err != nil {
			return nil, fmt.Errorf("day %d organic growth: %w", d.day, err)
		}
		organic.Added = d.script.DailyGrowth
	}
	if d.script.DailyChurnRate > 0 {
		removed, err := d.organicChurn(now)
		if err != nil {
			return nil, fmt.Errorf("day %d organic churn: %w", d.day, err)
		}
		organic.Removed = removed
	}
	if organic.Added > 0 || organic.Removed > 0 {
		applied = append(applied, organic)
	}

	for _, ev := range d.script.Events {
		if ev.Day != d.day {
			continue
		}
		switch ev.Kind {
		case ChurnPurchase:
			if ev.Size <= 0 {
				continue
			}
			if err := d.gen.BuyFollowers(d.target, ev.Size); err != nil {
				return nil, fmt.Errorf("day %d purchase burst: %w", d.day, err)
			}
			applied = append(applied, AppliedEvent{Day: d.day, At: now, Kind: ChurnPurchase, Added: ev.Size})
		case ChurnPurge:
			removed, err := d.PurgeFakes(ev.Fraction)
			if err != nil {
				return nil, fmt.Errorf("day %d purge: %w", d.day, err)
			}
			applied = append(applied, AppliedEvent{Day: d.day, At: now, Kind: ChurnPurge, Removed: removed})
		default:
			return nil, fmt.Errorf("day %d: unknown churn event kind %q", d.day, ev.Kind)
		}
	}

	d.log = append(d.log, applied...)
	return applied, nil
}

// organicChurn removes DailyChurnRate of the current followers, drawn
// uniformly over the whole list (long-standing and fresh followers leave
// alike).
func (d *Driver) organicChurn(now time.Time) (int, error) {
	count, err := d.store.FollowerCount(d.target)
	if err != nil {
		return 0, err
	}
	k := int(float64(count) * d.script.DailyChurnRate)
	if k <= 0 {
		return 0, nil
	}
	chrono, err := d.store.FollowersChronological(d.target)
	if err != nil {
		return 0, err
	}
	if k > len(chrono) {
		// Rates above 1/day empty the list rather than panicking the
		// sampler.
		k = len(chrono)
	}
	leavers := make([]twitter.UserID, 0, k)
	for _, idx := range d.src.SampleInts(len(chrono), k) {
		leavers = append(leavers, chrono[idx])
	}
	return d.store.RemoveFollowers(d.target, leavers, now)
}

// PurgeFakes removes the given fraction of the target's ground-truth fake
// followers (uniformly chosen), returning how many edges were dropped. It
// is exported so one-off purges can be injected outside a script.
func (d *Driver) PurgeFakes(fraction float64) (int, error) {
	if fraction <= 0 {
		return 0, nil
	}
	if fraction > 1 {
		fraction = 1
	}
	chrono, err := d.store.FollowersChronological(d.target)
	if err != nil {
		return 0, err
	}
	var fakes []twitter.UserID
	for _, id := range chrono {
		class, err := d.store.TrueClass(id)
		if err != nil {
			return 0, err
		}
		if class == twitter.ClassFake {
			fakes = append(fakes, id)
		}
	}
	k := int(float64(len(fakes)) * fraction)
	if k <= 0 {
		return 0, nil
	}
	victims := make([]twitter.UserID, 0, k)
	for _, idx := range d.src.SampleInts(len(fakes), k) {
		victims = append(victims, fakes[idx])
	}
	return d.store.RemoveFollowers(d.target, victims, d.store.Now())
}

// Truth reports the target's current ground-truth class mix and live
// follower count — the reference series the monitoring experiment scores
// every tool against.
func (d *Driver) Truth() (Mix, int, error) {
	chrono, err := d.store.FollowersChronological(d.target)
	if err != nil {
		return Mix{}, 0, err
	}
	counts := d.store.ClassCounts(chrono)
	n := len(chrono)
	if n == 0 {
		return Mix{}, 0, nil
	}
	return Mix{
		Inactive: float64(counts[twitter.ClassInactive]) / float64(n),
		Fake:     float64(counts[twitter.ClassFake]) / float64(n),
		Genuine:  float64(counts[twitter.ClassGenuine]) / float64(n),
	}, n, nil
}
