// Package population builds the synthetic follower populations the
// reproduction audits. The generator is calibrated so that the ground truth
// of each target matches what the paper's trusted reference (the FC engine,
// which samples uniformly from the whole list) reported in Table III, while
// the *positional layout* of classes matches what the window-limited tools
// observed — the mechanism behind the paper's central finding.
//
// Ground-truth classes follow the FC engine's operational definitions
// (Section III), because the paper uses FC as the reference instrument:
//
//   - inactive: never tweeted, or last tweet older than 90 days;
//   - fake:     an *active* account fabricated to inflate follower counts
//     (spam-bot behaviour profile);
//   - genuine:  an active, authentic account.
//
// Dormant bought followers therefore land in "inactive" — exactly as FC
// would count them — with an "egg-like" flavour that other tools tend to
// count as fake instead, reproducing the FC/StatusPeople divergence the
// paper reports.
package population

import (
	"errors"
	"fmt"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
)

// InactivityThreshold is the dormancy horizon shared by FC and Socialbakers:
// "the last tweet is more than 90 days old".
const InactivityThreshold = 90 * 24 * time.Hour

// Mix is a class distribution. Components should sum to 1.
type Mix struct {
	Inactive float64
	Fake     float64
	Genuine  float64
}

// Sum returns the component total.
func (m Mix) Sum() float64 { return m.Inactive + m.Fake + m.Genuine }

// Normalised returns the mix scaled to sum to 1, with non-negative
// components (negatives are clamped to a small floor first).
func (m Mix) Normalised() Mix {
	const floor = 0.002
	if m.Inactive < floor {
		m.Inactive = floor
	}
	if m.Fake < floor {
		m.Fake = floor
	}
	if m.Genuine < floor {
		m.Genuine = floor
	}
	s := m.Sum()
	return Mix{Inactive: m.Inactive / s, Fake: m.Fake / s, Genuine: m.Genuine / s}
}

// FromPercentages builds a Mix from Table III-style percentage columns.
func FromPercentages(inactive, fake, genuine float64) Mix {
	return Mix{Inactive: inactive / 100, Fake: fake / 100, Genuine: genuine / 100}.Normalised()
}

// Segment assigns a class mix to a contiguous run of followers counted from
// the *newest* end of the list (the part of the population each analytics
// window actually sees).
type Segment struct {
	// Width is the number of followers in this segment. The final segment
	// of a layout may use Width 0 meaning "everything older".
	Width int
	// Mix is the class distribution inside the segment.
	Mix Mix
}

// Layout is a full positional class plan, newest segment first.
type Layout []Segment

// mixAt returns the mix governing the follower at the given distance from
// the newest end.
func (l Layout) mixAt(distFromNewest int) Mix {
	acc := 0
	for _, seg := range l {
		if seg.Width <= 0 {
			return seg.Mix
		}
		acc += seg.Width
		if distFromNewest < acc {
			return seg.Mix
		}
	}
	if len(l) == 0 {
		return Mix{Genuine: 1}
	}
	return l[len(l)-1].Mix
}

// Truth returns the expected overall mix for a population of n followers
// under this layout.
func (l Layout) Truth(n int) Mix {
	if n <= 0 {
		return Mix{}
	}
	var out Mix
	for d := 0; d < n; d++ {
		m := l.mixAt(d)
		out.Inactive += m.Inactive
		out.Fake += m.Fake
		out.Genuine += m.Genuine
	}
	out.Inactive /= float64(n)
	out.Fake /= float64(n)
	out.Genuine /= float64(n)
	return out
}

// TargetSpec describes one account to build.
type TargetSpec struct {
	// ScreenName is the account's handle (must be unique in the store).
	ScreenName string
	// Followers is the number of follower accounts to materialise.
	Followers int
	// NominalFollowers is the real-world follower count the account
	// represents when Followers had to be scaled down for memory (0 means
	// equal to Followers). Reports display the nominal value; the crawl
	// cost model uses it too.
	NominalFollowers int
	// Layout positions the classes. Nil means all-genuine.
	Layout Layout
	// CreatedAt, Statuses, LastTweet describe the target's own profile.
	CreatedAt time.Time
	Statuses  int
	LastTweet time.Time
	// FollowSpan is the period over which the follower base accrued
	// (defaults to 3 years ending now).
	FollowSpan time.Duration
}

// ErrBadSpec reports an invalid target specification.
var ErrBadSpec = errors.New("population: invalid target spec")

// Generator builds populations into a twitter.Store.
type Generator struct {
	store *twitter.Store
	src   *drand.Source
	// growSeq numbers GrowFollowers calls so every growth cohort draws a
	// fresh archetype stream — day 2 of organic growth must not clone day 1.
	growSeq int64
}

// NewGenerator creates a generator writing into store, seeded independently
// of other consumers of the root seed.
func NewGenerator(store *twitter.Store, seed uint64) *Generator {
	return &Generator{store: store, src: drand.New(seed).Fork("population")}
}

// Store returns the generator's store.
func (g *Generator) Store() *twitter.Store { return g.store }

// BuildTarget materialises the target account and its follower base.
// Followers are created and followed in chronological order: the layout's
// last segment is the oldest part of the list and the first segment the
// newest — so an API consumer paging "newest first" walks the layout in
// order.
func (g *Generator) BuildTarget(spec TargetSpec) (twitter.UserID, error) {
	if spec.ScreenName == "" || spec.Followers < 0 {
		return 0, fmt.Errorf("%w: %+v", ErrBadSpec, spec)
	}
	now := g.store.Now()
	createdAt := spec.CreatedAt
	if createdAt.IsZero() {
		createdAt = now.Add(-3 * 365 * 24 * time.Hour)
	}
	lastTweet := spec.LastTweet
	if lastTweet.IsZero() && spec.Statuses > 0 {
		lastTweet = now.Add(-24 * time.Hour)
	}
	target, err := g.store.CreateUser(twitter.UserParams{
		ScreenName: spec.ScreenName,
		CreatedAt:  createdAt,
		LastTweet:  lastTweet,
		Statuses:   spec.Statuses,
		Friends:    g.src.IntBetween(50, 900),
		Bio:        true,
		Location:   true,
		URL:        true,
		Verified:   spec.Followers > 100000,
		Class:      twitter.ClassGenuine,
		Behavior:   twitter.Behavior{RetweetRatio: 0.15, LinkRatio: 0.3},
	})
	if err != nil {
		return 0, fmt.Errorf("creating target %s: %w", spec.ScreenName, err)
	}
	if spec.Followers == 0 {
		return target, nil
	}

	span := spec.FollowSpan
	if span <= 0 {
		span = 3 * 365 * 24 * time.Hour
	}
	firstFollow := now.Add(-span)
	if firstFollow.Before(createdAt) {
		firstFollow = createdAt
	}
	// Leave headroom so "new followers arrive after build" stays monotonic.
	window := now.Add(-time.Hour).Sub(firstFollow)
	step := window / time.Duration(spec.Followers)
	if step <= 0 {
		step = time.Second
	}

	g.store.Grow(spec.Followers)
	layout := spec.Layout
	if layout == nil {
		layout = Layout{{Width: 0, Mix: Mix{Genuine: 1}}}
	}
	arch := newArchetypes(g.src.Fork("arch:" + spec.ScreenName))
	at := firstFollow
	for i := 0; i < spec.Followers; i++ {
		distFromNewest := spec.Followers - 1 - i
		mix := layout.mixAt(distFromNewest)
		class := arch.drawClass(mix)
		params := arch.draw(class, now)
		follower, err := g.store.CreateUser(params)
		if err != nil {
			return 0, fmt.Errorf("creating follower %d of %s: %w", i, spec.ScreenName, err)
		}
		if err := g.store.AddFollower(target, follower, at); err != nil {
			return 0, fmt.Errorf("following %s: %w", spec.ScreenName, err)
		}
		at = at.Add(step)
	}
	return target, nil
}

// GrowFollowers appends n fresh followers (drawn from mix) to an existing
// target at the store's current time — the daily organic growth used by the
// Section IV-B snapshot experiment.
func (g *Generator) GrowFollowers(target twitter.UserID, n int, mix Mix) error {
	now := g.store.Now()
	g.growSeq++
	arch := newArchetypes(g.src.ForkN("grow", g.growSeq))
	for i := 0; i < n; i++ {
		class := arch.drawClass(mix)
		follower, err := g.store.CreateUser(arch.draw(class, now))
		if err != nil {
			return fmt.Errorf("growing target %d: %w", target, err)
		}
		if err := g.store.AddFollower(target, follower, now); err != nil {
			return fmt.Errorf("growing target %d: %w", target, err)
		}
	}
	return nil
}

// BuyFollowers appends a burst of n freshly created fake/egg followers — a
// follower purchase, as in the StatusPeople blog anecdote of Section II-A
// ("if an account with 100K genuine followers buys 10K fake followers...").
func (g *Generator) BuyFollowers(target twitter.UserID, n int) error {
	// Purchased batches are a blend of active spam bots and dormant eggs.
	return g.GrowFollowers(target, n, Mix{Inactive: 0.35, Fake: 0.65})
}
