package population

import (
	"math"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func newGen(t *testing.T) (*Generator, *twitter.Store, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 7)
	return NewGenerator(store, 7), store, clock
}

func TestMixNormalised(t *testing.T) {
	m := Mix{Inactive: 2, Fake: 1, Genuine: 1}.Normalised()
	if math.Abs(m.Sum()-1) > 1e-12 {
		t.Fatalf("sum = %v", m.Sum())
	}
	if math.Abs(m.Inactive-0.5) > 1e-9 {
		t.Fatalf("inactive = %v", m.Inactive)
	}
	// Negative components are floored, not propagated.
	m = Mix{Inactive: -0.5, Fake: 0.5, Genuine: 0.5}.Normalised()
	if m.Inactive < 0 || math.Abs(m.Sum()-1) > 1e-12 {
		t.Fatalf("negative clamp failed: %+v", m)
	}
}

func TestFromPercentages(t *testing.T) {
	m := FromPercentages(97, 1.2, 1.8)
	if math.Abs(m.Inactive-0.97) > 0.01 {
		t.Fatalf("inactive = %v", m.Inactive)
	}
	if math.Abs(m.Sum()-1) > 1e-12 {
		t.Fatalf("sum = %v", m.Sum())
	}
}

func TestLayoutMixAt(t *testing.T) {
	l := Layout{
		{Width: 100, Mix: Mix{Genuine: 1}},
		{Width: 200, Mix: Mix{Fake: 1}},
		{Width: 0, Mix: Mix{Inactive: 1}},
	}
	if m := l.mixAt(0); m.Genuine != 1 {
		t.Fatalf("newest should be genuine: %+v", m)
	}
	if m := l.mixAt(99); m.Genuine != 1 {
		t.Fatalf("edge of band 1: %+v", m)
	}
	if m := l.mixAt(100); m.Fake != 1 {
		t.Fatalf("start of band 2: %+v", m)
	}
	if m := l.mixAt(299); m.Fake != 1 {
		t.Fatalf("edge of band 2: %+v", m)
	}
	if m := l.mixAt(300); m.Inactive != 1 {
		t.Fatalf("tail band: %+v", m)
	}
	if m := l.mixAt(1000000); m.Inactive != 1 {
		t.Fatalf("deep tail: %+v", m)
	}
}

func TestLayoutTruth(t *testing.T) {
	l := Layout{
		{Width: 500, Mix: Mix{Genuine: 1}},
		{Width: 0, Mix: Mix{Inactive: 1}},
	}
	truth := l.Truth(1000)
	if math.Abs(truth.Genuine-0.5) > 1e-9 || math.Abs(truth.Inactive-0.5) > 1e-9 {
		t.Fatalf("truth = %+v", truth)
	}
}

func TestBuildTargetGroundTruthMatchesLayout(t *testing.T) {
	g, store, _ := newGen(t)
	layout := Layout{
		{Width: 1000, Mix: Mix{Inactive: 0.17, Fake: 0.35, Genuine: 0.48}},
		{Width: 0, Mix: Mix{Inactive: 0.95, Fake: 0.01, Genuine: 0.04}},
	}
	target, err := g.BuildTarget(TargetSpec{
		ScreenName: "pc_chiambretti_like",
		Followers:  8000,
		Layout:     layout,
		Statuses:   13,
	})
	if err != nil {
		t.Fatal(err)
	}
	chrono, err := store.FollowersChronological(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(chrono) != 8000 {
		t.Fatalf("followers = %d", len(chrono))
	}

	// The newest 1000 (end of chrono) must follow the first band's mix.
	newest := chrono[len(chrono)-1000:]
	counts := store.ClassCounts(newest)
	if frac := float64(counts[twitter.ClassInactive]) / 1000; math.Abs(frac-0.17) > 0.05 {
		t.Fatalf("newest band inactive = %.3f, want ≈0.17", frac)
	}
	if frac := float64(counts[twitter.ClassFake]) / 1000; math.Abs(frac-0.35) > 0.05 {
		t.Fatalf("newest band fake = %.3f, want ≈0.35", frac)
	}
	// The old body must be dormant.
	body := chrono[:7000]
	bodyCounts := store.ClassCounts(body)
	if frac := float64(bodyCounts[twitter.ClassInactive]) / 7000; math.Abs(frac-0.95) > 0.03 {
		t.Fatalf("body inactive = %.3f, want ≈0.95", frac)
	}
}

func TestArchetypesHonourOperationalDefinitions(t *testing.T) {
	g, store, clock := newGen(t)
	target, err := g.BuildTarget(TargetSpec{
		ScreenName: "defs",
		Followers:  3000,
		Layout:     Layout{{Width: 0, Mix: Mix{Inactive: 0.34, Fake: 0.33, Genuine: 0.33}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	chrono, _ := store.FollowersChronological(target)
	now := clock.Now()
	for _, id := range chrono {
		class, _ := store.TrueClass(id)
		p, err := store.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		dormant := p.HasNeverTweeted() || now.Sub(p.LastTweetAt) > InactivityThreshold
		switch class {
		case twitter.ClassInactive:
			if !dormant {
				t.Fatalf("inactive account %d is not dormant: last tweet %v", id, p.LastTweetAt)
			}
		case twitter.ClassGenuine, twitter.ClassFake:
			if dormant {
				t.Fatalf("%v account %d is dormant: statuses=%d last=%v",
					class, id, p.StatusesCount, p.LastTweetAt)
			}
		}
		if !p.CreatedAt.Before(now) {
			t.Fatalf("account %d created in the future", id)
		}
		if !p.LastTweetAt.IsZero() && p.LastTweetAt.Before(p.CreatedAt) {
			t.Fatalf("account %d tweeted before creation", id)
		}
	}
}

func TestFakeArchetypeLooksBought(t *testing.T) {
	g, store, _ := newGen(t)
	target, _ := g.BuildTarget(TargetSpec{
		ScreenName: "fakes",
		Followers:  1500,
		Layout:     Layout{{Width: 0, Mix: Mix{Fake: 1}}},
	})
	chrono, _ := store.FollowersChronological(target)
	lowRatio := 0
	spammy := 0
	for _, id := range chrono {
		p, _ := store.Profile(id)
		if p.FollowerFriendRatio() < 0.2 {
			lowRatio++
		}
		if p.Behavior.SpamRatio > 0.3 || p.Behavior.DuplicateRatio > 0.25 {
			spammy++
		}
	}
	if frac := float64(lowRatio) / 1500; frac < 0.95 {
		t.Fatalf("fake follower/friend ratios not lopsided: %.3f", frac)
	}
	if frac := float64(spammy) / 1500; frac < 0.7 {
		t.Fatalf("fakes not spammy enough: %.3f", frac)
	}
}

func TestBuildTargetFollowTimesMonotonic(t *testing.T) {
	g, store, _ := newGen(t)
	target, err := g.BuildTarget(TargetSpec{ScreenName: "mono", Followers: 500})
	if err != nil {
		t.Fatal(err)
	}
	edges, _ := store.FollowEdges(target)
	for i := 1; i < len(edges); i++ {
		if edges[i].At.Before(edges[i-1].At) {
			t.Fatalf("follow times not monotonic at %d", i)
		}
	}
}

func TestGrowFollowersAppendsAtEnd(t *testing.T) {
	g, store, clock := newGen(t)
	target, err := g.BuildTarget(TargetSpec{ScreenName: "growing", Followers: 200})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := store.FollowersChronological(target)
	clock.Advance(24 * time.Hour)
	if err := g.GrowFollowers(target, 30, Mix{Genuine: 1}); err != nil {
		t.Fatal(err)
	}
	after, _ := store.FollowersChronological(target)
	if len(after) != 230 {
		t.Fatalf("after growth = %d", len(after))
	}
	for i, id := range before {
		if after[i] != id {
			t.Fatalf("existing order disturbed at %d", i)
		}
	}
	newest, _ := store.FollowersNewestFirst(target)
	newCounts := store.ClassCounts(newest[:30])
	if newCounts[twitter.ClassGenuine] != 30 {
		t.Fatalf("new follower classes = %v", newCounts)
	}
}

func TestBuyFollowersBurst(t *testing.T) {
	g, store, clock := newGen(t)
	target, err := g.BuildTarget(TargetSpec{ScreenName: "buyer", Followers: 1000})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	if err := g.BuyFollowers(target, 500); err != nil {
		t.Fatal(err)
	}
	newest, _ := store.FollowersNewestFirst(target)
	counts := store.ClassCounts(newest[:500])
	junk := counts[twitter.ClassFake] + counts[twitter.ClassInactive]
	if junk < 480 {
		t.Fatalf("bought batch contains %d junk accounts, want ≈500", junk)
	}
}

func TestBuildTargetBadSpec(t *testing.T) {
	g, _, _ := newGen(t)
	if _, err := g.BuildTarget(TargetSpec{}); err == nil {
		t.Fatal("empty spec should fail")
	}
	if _, err := g.BuildTarget(TargetSpec{ScreenName: "x", Followers: -1}); err == nil {
		t.Fatal("negative followers should fail")
	}
}

func TestBuildTargetZeroFollowers(t *testing.T) {
	g, store, _ := newGen(t)
	target, err := g.BuildTarget(TargetSpec{ScreenName: "lonely"})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := store.FollowerCount(target); n != 0 {
		t.Fatalf("follower count = %d", n)
	}
}

func TestDeriveLayoutSmallAccount(t *testing.T) {
	truth := FromPercentages(25, 1.4, 73.6)
	l := DeriveLayout(929, truth, FromPercentages(0, 0, 100), FromPercentages(28, 0, 72))
	if len(l) != 1 {
		t.Fatalf("small account layout bands = %d, want 1", len(l))
	}
	got := l.Truth(929)
	if math.Abs(got.Inactive-truth.Inactive) > 0.01 {
		t.Fatalf("truth not preserved: %+v", got)
	}
}

func TestDeriveLayoutMidAccount(t *testing.T) {
	truth := FromPercentages(44.3, 9.9, 45.8)
	sb := FromPercentages(5, 27, 68)
	sp := FromPercentages(58, 18, 24)
	const n = 13900
	l := DeriveLayout(n, truth, sb, sp)
	if len(l) != 2 {
		t.Fatalf("bands = %d, want 2", len(l))
	}
	// Whole-list truth must be preserved by construction.
	got := l.Truth(n)
	if math.Abs(got.Inactive-truth.Inactive) > 0.02 {
		t.Fatalf("derived truth inactive = %.3f, want %.3f", got.Inactive, truth.Inactive)
	}
	// The newest 2000 must match the SB observation.
	if m := l.mixAt(0); math.Abs(m.Fake-sb.Fake) > 0.01 {
		t.Fatalf("newest band fake = %.3f, want %.3f", m.Fake, sb.Fake)
	}
}

func TestDeriveLayoutLargeAccount(t *testing.T) {
	// @PC_Chiambretti: FC 97/1.2/1.8, SB 17/35/48, SP 48/44/8 over 70900.
	truth := FromPercentages(97, 1.2, 1.8)
	sb := FromPercentages(17, 35, 48)
	sp := FromPercentages(48, 44, 8)
	const n = 70900
	l := DeriveLayout(n, truth, sb, sp)
	if len(l) != 3 {
		t.Fatalf("bands = %d, want 3", len(l))
	}
	// The FC truth has priority and must be preserved even though the SP
	// observation is inconsistent with it (the paper's finding).
	got := l.Truth(n)
	if math.Abs(got.Inactive-truth.Inactive) > 0.025 {
		t.Fatalf("derived truth inactive = %.3f, want 0.97", got.Inactive)
	}
	// The newest-35000 window must be at least as dormant as SP reported
	// (SP *undercounts* inactives; it cannot overcount here).
	var spView Mix
	for d := 0; d < 35000; d++ {
		m := l.mixAt(d)
		spView.Inactive += m.Inactive
		spView.Fake += m.Fake
		spView.Genuine += m.Genuine
	}
	spView.Inactive /= 35000
	spView.Fake /= 35000
	spView.Genuine /= 35000
	if spView.Inactive < sp.Inactive {
		t.Fatalf("SP window inactive = %.3f, want >= observed %.3f", spView.Inactive, sp.Inactive)
	}
	// The deep body must be almost entirely inactive (the abandoned base).
	if body := l.mixAt(n - 1); body.Inactive < 0.97 {
		t.Fatalf("body inactive = %.3f, want ≈0.99+", body.Inactive)
	}
}

func TestDeriveLayoutTruthPreservationProperty(t *testing.T) {
	// Property: for arbitrary (even mutually inconsistent) tool columns,
	// the derived layout preserves the FC truth within a couple of points
	// — truth has priority over the window observations.
	next := uint64(12345)
	rnd := func() float64 {
		next = next*6364136223846793005 + 1442695040888963407
		return float64(next>>11) / float64(1<<53)
	}
	randMix := func() Mix {
		a, b, c := rnd()+0.01, rnd()+0.01, rnd()+0.01
		return Mix{Inactive: a, Fake: b, Genuine: c}.Normalised()
	}
	for trial := 0; trial < 300; trial++ {
		n := 2500 + int(rnd()*200000)
		truth := randMix()
		sb := randMix()
		sp := randMix()
		l := DeriveLayout(n, truth, sb, sp)
		got := l.Truth(n)
		const tol = 0.035
		if math.Abs(got.Inactive-truth.Inactive) > tol ||
			math.Abs(got.Fake-truth.Fake) > tol ||
			math.Abs(got.Genuine-truth.Genuine) > tol {
			t.Fatalf("trial %d (n=%d): truth %+v not preserved: %+v", trial, n, truth, got)
		}
		for _, seg := range l {
			if seg.Mix.Inactive < 0 || seg.Mix.Fake < 0 || seg.Mix.Genuine < 0 {
				t.Fatalf("trial %d: negative band mix %+v", trial, seg.Mix)
			}
		}
	}
}

func TestDeriveLayoutClampsInfeasible(t *testing.T) {
	// A contradictory system (tools saw more fakes than exist overall)
	// must clamp, not produce negative mixes.
	truth := FromPercentages(5, 1, 94)
	sb := FromPercentages(80, 15, 5)
	sp := FromPercentages(70, 20, 10)
	l := DeriveLayout(100000, truth, sb, sp)
	for _, seg := range l {
		if seg.Mix.Inactive < 0 || seg.Mix.Fake < 0 || seg.Mix.Genuine < 0 {
			t.Fatalf("negative mix: %+v", seg.Mix)
		}
		if math.Abs(seg.Mix.Sum()-1) > 1e-9 {
			t.Fatalf("unnormalised mix: %+v", seg.Mix)
		}
	}
}
