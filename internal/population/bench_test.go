package population

import (
	"fmt"
	"testing"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// BenchmarkBuildTarget10K measures population synthesis throughput (the
// simulation build's dominant cost: ~1.5M followers for the full testbed).
func BenchmarkBuildTarget10K(b *testing.B) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	gen := NewGenerator(store, 1)
	layout := Layout{
		{Width: 2000, Mix: Mix{Inactive: 0.2, Fake: 0.3, Genuine: 0.5}},
		{Width: 0, Mix: Mix{Inactive: 0.6, Fake: 0.05, Genuine: 0.35}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.BuildTarget(TargetSpec{
			ScreenName: fmt.Sprintf("bench_%d", i),
			Followers:  10000,
			Layout:     layout,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10000, "followers/op")
}

// BenchmarkDeriveLayout measures the Table III calibration solver.
func BenchmarkDeriveLayout(b *testing.B) {
	truth := FromPercentages(97, 1.2, 1.8)
	sb := FromPercentages(17, 35, 48)
	sp := FromPercentages(48, 44, 8)
	for i := 0; i < b.N; i++ {
		l := DeriveLayout(70900, truth, sb, sp)
		if len(l) != 3 {
			b.Fatal("bad layout")
		}
	}
}
