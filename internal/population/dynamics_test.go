package population

import (
	"testing"
	"time"

	"fakeproject/internal/twitter"
)

func dynTarget(t *testing.T) (*Generator, *twitter.Store, twitter.UserID, func(time.Duration)) {
	t.Helper()
	g, store, clock := newGen(t)
	target, err := g.BuildTarget(TargetSpec{
		ScreenName: "drifting",
		Followers:  4000,
		Layout:     Layout{{Width: 0, Mix: Mix{Inactive: 0.2, Fake: 0.1, Genuine: 0.7}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, store, target, clock.Advance
}

func TestDriverOrganicDay(t *testing.T) {
	g, store, target, advance := dynTarget(t)
	d := NewDriver(g, target, ChurnScript{DailyGrowth: 100, DailyChurnRate: 0.01})

	for day := 1; day <= 3; day++ {
		advance(24 * time.Hour)
		applied, err := d.AdvanceDay()
		if err != nil {
			t.Fatal(err)
		}
		if len(applied) != 1 || applied[0].Kind != ChurnOrganic {
			t.Fatalf("day %d applied %+v, want one organic event", day, applied)
		}
		if applied[0].Added != 100 || applied[0].Removed == 0 {
			t.Fatalf("day %d organic = %+v, want 100 added and some churn", day, applied[0])
		}
	}
	if d.Day() != 3 {
		t.Fatalf("Day() = %d, want 3", d.Day())
	}
	count, _ := store.FollowerCount(target)
	removed, _ := store.RemovedCount(target)
	if count != 4000+300-removed {
		t.Fatalf("count = %d with %d removed, want balance to hold", count, removed)
	}
	// Roughly 1%/day of ~4100 followers churns.
	if removed < 90 || removed > 150 {
		t.Fatalf("organic churn removed %d over 3 days, want ≈120", removed)
	}
	// Successive growth cohorts must not be clones of each other.
	newest, _ := store.FollowersNewestFirst(target)
	p1, _ := store.Profile(newest[0])
	p2, _ := store.Profile(newest[100])
	if p1.StatusesCount == p2.StatusesCount && p1.FriendsCount == p2.FriendsCount &&
		p1.FollowersCount == p2.FollowersCount {
		t.Fatalf("day cohorts look cloned: %+v vs %+v", p1, p2)
	}
}

func TestDriverPurchaseBurstLandsNewest(t *testing.T) {
	g, store, target, advance := dynTarget(t)
	d := NewDriver(g, target, ChurnScript{
		DailyGrowth: 50,
		Events:      []ChurnEvent{{Day: 2, Kind: ChurnPurchase, Size: 800}},
	})
	for day := 1; day <= 2; day++ {
		advance(24 * time.Hour)
		if _, err := d.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
	}
	newest, _ := store.FollowersNewestFirst(target)
	counts := store.ClassCounts(newest[:800])
	junk := counts[twitter.ClassFake] + counts[twitter.ClassInactive]
	if junk < 760 {
		t.Fatalf("burst window holds %d junk of 800, want ≈800", junk)
	}
	log := d.Log()
	var sawBurst bool
	for _, ev := range log {
		if ev.Kind == ChurnPurchase && ev.Day == 2 && ev.Added == 800 {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Fatalf("ground-truth log misses the burst: %+v", log)
	}
}

func TestDriverPurgeRemovesFakes(t *testing.T) {
	g, store, target, advance := dynTarget(t)
	d := NewDriver(g, target, ChurnScript{
		Events: []ChurnEvent{
			{Day: 1, Kind: ChurnPurchase, Size: 1000},
			{Day: 2, Kind: ChurnPurge, Fraction: 0.5},
		},
	})
	advance(24 * time.Hour)
	if _, err := d.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	truthBefore, _, err := d.Truth()
	if err != nil {
		t.Fatal(err)
	}
	advance(24 * time.Hour)
	applied, err := d.AdvanceDay()
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Kind != ChurnPurge || applied[0].Removed == 0 {
		t.Fatalf("day 2 applied %+v, want a purge with removals", applied)
	}
	truthAfter, count, err := d.Truth()
	if err != nil {
		t.Fatal(err)
	}
	if truthAfter.Fake >= truthBefore.Fake {
		t.Fatalf("fake share %0.3f did not drop from %0.3f after purge", truthAfter.Fake, truthBefore.Fake)
	}
	// Purged edges left the live list and entered the removal log.
	removed, _ := store.RemovedCount(target)
	if removed != applied[0].Removed {
		t.Fatalf("removal log %d vs applied %d", removed, applied[0].Removed)
	}
	if live, _ := store.FollowerCount(target); live != count || live != 5000-removed {
		t.Fatalf("live count %d, want %d", live, 5000-removed)
	}
	// The purge targets fakes: about half of them are gone.
	classBefore := int(truthBefore.Fake * 5000)
	if applied[0].Removed < classBefore/3 || applied[0].Removed > classBefore {
		t.Fatalf("purge removed %d of ≈%d fakes, want ≈half", applied[0].Removed, classBefore)
	}
}

func TestDriverUnknownEventKind(t *testing.T) {
	g, _, target, advance := dynTarget(t)
	d := NewDriver(g, target, ChurnScript{Events: []ChurnEvent{{Day: 1, Kind: "meltdown"}}})
	advance(24 * time.Hour)
	if _, err := d.AdvanceDay(); err == nil {
		t.Fatal("unknown event kind must error")
	}
}
