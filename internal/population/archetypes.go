package population

import (
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
)

// archetypes draws follower profiles per ground-truth class. Parameter
// choices mirror the qualitative descriptions the vendors and the paper
// give of each population:
//
//   - genuine accounts "engage with the platform - producing and sharing
//     content" (StatusPeople's definition of active);
//   - fake accounts "tend to follow a lot of people but don't have many
//     followers" (Rob Waller, StatusPeople) and trip the Socialbakers
//     criteria (spam phrases, repeated tweets, link/retweet saturation);
//   - inactive accounts have "posted less than 3 tweets" or a last tweet
//     "more than 90 days old" (Socialbakers), with an egg-like sub-flavour
//     (default image, lopsided follow ratio) that fake-detectors tend to
//     flag as fake instead.
type archetypes struct {
	src *drand.Source
}

func newArchetypes(src *drand.Source) *archetypes {
	return &archetypes{src: src}
}

// drawClass samples a ground-truth class from a mix.
func (a *archetypes) drawClass(m Mix) twitter.Class {
	switch a.src.WeightedChoice([]float64{m.Inactive, m.Fake, m.Genuine}) {
	case 0:
		return twitter.ClassInactive
	case 1:
		return twitter.ClassFake
	default:
		return twitter.ClassGenuine
	}
}

// draw materialises creation parameters for one follower of the given class.
// now is the observation instant anchoring all relative times.
func (a *archetypes) draw(class twitter.Class, now time.Time) twitter.UserParams {
	switch class {
	case twitter.ClassGenuine:
		return a.genuine(now)
	case twitter.ClassInactive:
		return a.inactive(now)
	case twitter.ClassFake:
		return a.fake(now)
	default:
		return a.genuine(now)
	}
}

func day(n float64) time.Duration { return time.Duration(n * 24 * float64(time.Hour)) }

func (a *archetypes) genuine(now time.Time) twitter.UserParams {
	src := a.src
	ageDays := src.NormClamped(900, 500, 120, 2800)
	created := now.Add(-day(ageDays))
	// Active by construction: last tweet within the 90-day horizon.
	lastTweet := now.Add(-day(src.Exp(12)))
	if lastTweet.Before(created) {
		lastTweet = created.Add(time.Hour)
	}
	if now.Sub(lastTweet) >= InactivityThreshold {
		lastTweet = now.Add(-day(80))
	}
	statuses := int(src.LogNormal(6.3, 1.3))
	if statuses < 3 {
		statuses = 3
	}
	if statuses > 80000 {
		statuses = 80000
	}
	friends := int(src.LogNormal(5.4, 0.9))
	if friends < 15 {
		friends = 15
	}
	followers := int(src.LogNormal(4.9, 1.2))
	if followers < 5 {
		followers = 5
	}
	return twitter.UserParams{
		CreatedAt:           created,
		LastTweet:           lastTweet,
		Statuses:            statuses,
		Friends:             friends,
		Followers:           followers,
		Bio:                 src.Bool(0.85),
		Location:            src.Bool(0.65),
		URL:                 src.Bool(0.3),
		DefaultProfileImage: src.Bool(0.04),
		Protected:           src.Bool(0.05),
		Class:               twitter.ClassGenuine,
		Behavior: twitter.Behavior{
			RetweetRatio: src.NormClamped(0.22, 0.12, 0, 0.6),
			LinkRatio:    src.NormClamped(0.28, 0.15, 0, 0.7),
			// Genuine users occasionally utter a "spam phrase" (a diet
			// tweet is not a crime) and rarely repeat themselves.
			SpamRatio:      src.NormClamped(0.01, 0.015, 0, 0.08),
			DuplicateRatio: src.NormClamped(0.005, 0.005, 0, 0.015),
		},
	}
}

func (a *archetypes) inactive(now time.Time) twitter.UserParams {
	src := a.src
	// Eggs: dormant bought followers — empty, lopsided, default image.
	egg := src.Bool(0.3)
	ageDays := src.NormClamped(1300, 600, 200, 3000)
	if egg {
		ageDays = src.NormClamped(400, 250, 70, 1200)
	}
	created := now.Add(-day(ageDays))

	var statuses int
	var lastTweet time.Time
	// Accounts younger than the dormancy horizon cannot have a >90-day-old
	// last tweet, so they must be of the never-tweeted flavour.
	if src.Bool(0.45) || ageDays <= 95 {
		statuses = 0 // never tweeted
	} else {
		statuses = src.IntBetween(1, 400)
		// Dormant by construction: last tweet beyond the 90-day horizon.
		gap := 91 + src.Exp(380)
		if maxGap := ageDays - 1; gap > maxGap {
			gap = maxGap
		}
		lastTweet = now.Add(-day(gap))
	}

	friends := int(src.LogNormal(4.4, 1.0))
	followers := int(src.LogNormal(3.2, 1.1))
	defaultImage := src.Bool(0.2)
	bio := src.Bool(0.5)
	location := src.Bool(0.4)
	if egg {
		friends = src.IntBetween(300, 3000)
		followers = src.IntBetween(0, 25)
		defaultImage = src.Bool(0.8)
		bio = src.Bool(0.08)
		location = src.Bool(0.05)
	}
	return twitter.UserParams{
		CreatedAt:           created,
		LastTweet:           lastTweet,
		Statuses:            statuses,
		Friends:             friends,
		Followers:           followers,
		Bio:                 bio,
		Location:            location,
		URL:                 src.Bool(0.08),
		DefaultProfileImage: defaultImage,
		Class:               twitter.ClassInactive,
		Behavior: twitter.Behavior{
			RetweetRatio:   src.NormClamped(0.2, 0.15, 0, 0.8),
			LinkRatio:      src.NormClamped(0.2, 0.15, 0, 0.8),
			SpamRatio:      src.NormClamped(0.01, 0.015, 0, 0.06),
			DuplicateRatio: src.NormClamped(0.01, 0.01, 0, 0.03),
		},
	}
}

func (a *archetypes) fake(now time.Time) twitter.UserParams {
	src := a.src
	ageDays := src.NormClamped(240, 160, 20, 900)
	created := now.Add(-day(ageDays))
	// Active spam bots: they keep tweeting to look alive.
	lastTweet := now.Add(-day(src.Exp(8)))
	if now.Sub(lastTweet) >= InactivityThreshold {
		lastTweet = now.Add(-day(45))
	}
	if lastTweet.Before(created) {
		lastTweet = created.Add(time.Hour)
	}
	statuses := src.IntBetween(8, 600)
	behavior := twitter.Behavior{
		RetweetRatio:   src.NormClamped(0.5, 0.25, 0, 0.97),
		LinkRatio:      src.NormClamped(0.75, 0.2, 0.2, 1),
		SpamRatio:      src.NormClamped(0.55, 0.2, 0.2, 1),
		DuplicateRatio: src.NormClamped(0.4, 0.2, 0.1, 0.95),
	}
	bio := src.Bool(0.15)
	location := src.Bool(0.1)
	defaultImage := src.Bool(0.45)
	if src.Bool(0.15) {
		// The "careful" flavour: evolved fakes that curate their content
		// to dodge spam-phrase and duplication criteria (the evasion
		// Yang et al. study); only the follow-graph geometry gives them
		// away.
		behavior = twitter.Behavior{
			RetweetRatio:   src.NormClamped(0.3, 0.15, 0, 0.7),
			LinkRatio:      src.NormClamped(0.35, 0.15, 0, 0.8),
			SpamRatio:      src.NormClamped(0.03, 0.03, 0, 0.1),
			DuplicateRatio: src.NormClamped(0.03, 0.03, 0, 0.1),
		}
		bio = src.Bool(0.6)
		location = src.Bool(0.4)
		defaultImage = src.Bool(0.1)
	}
	return twitter.UserParams{
		CreatedAt:           created,
		LastTweet:           lastTweet,
		Statuses:            statuses,
		Friends:             src.IntBetween(400, 4000),
		Followers:           src.IntBetween(0, 60),
		Bio:                 bio,
		Location:            location,
		URL:                 src.Bool(0.12),
		DefaultProfileImage: defaultImage,
		Class:               twitter.ClassFake,
		Behavior:            behavior,
	}
}
