package population

// DeriveLayout reconstructs a positional class layout from the three
// measurements the paper gives per account in Table III:
//
//   - truth: the FC column — a uniform whole-list sample, i.e. the overall
//     ground truth (within FC's ±1% confidence interval);
//   - sb: the Socialbakers column — the tool assesses "up to 2000 followers"
//     taken from the newest end, so it measures the newest-2000 mix;
//   - sp: the StatusPeople column — 700 records sampled "across a follower
//     base of up to 35K" newest followers, so it measures the newest-35000
//     mix, except that Fakers counts dormant egg accounts as fake rather
//     than inactive, so part of its fake column is re-attributed to
//     inactive before solving (eggShift).
//
// The three observations are not always mutually consistent — that
// inconsistency is the paper's finding — so the solver prioritises:
// (1) the FC truth, (2) the SB newest-2000 view, (3) the SP window view,
// clamping the oldest band to the feasible simplex and re-solving the middle
// band when the SP view cannot be honoured.
//
// Building the population from the derived layout makes the paper's numbers
// emerge from the sampling geometry when the tools are re-run, instead of
// being hard-coded outputs.
//
// n is the number of followers that will actually be materialised (the
// store-side population size, possibly scaled down from the real account).
func DeriveLayout(n int, truth, sb, sp Mix) Layout {
	truth = truth.Normalised()
	sb = sb.Normalised()
	sp = sp.Normalised()

	const sbWindow = 2000
	const spWindow = 35000
	// eggShift is the share of StatusPeople's "fake" verdicts attributed to
	// dormant egg accounts (truly inactive by the FC definition).
	const eggShift = 0.45

	if n <= sbWindow {
		// Every tool sees the whole list; the truth is the only band.
		return Layout{{Width: 0, Mix: truth}}
	}
	if n <= spWindow {
		// Two bands: the newest 2000 (SB's view) and the remainder, solved
		// so the whole-list truth holds. If the SB observation contradicts
		// the truth (the remainder would leave the simplex), truth wins:
		// clamp the remainder and re-solve the newest band.
		rest := solveRemainder(truth, float64(n), []bandObs{{width: sbWindow, mix: sb}})
		newest := sb
		if !feasible(rest) {
			rest = clampSimplex(rest)
			fn := float64(n)
			rem := fn - sbWindow
			newest = clampSimplex(Mix{
				Inactive: (truth.Inactive*fn - rest.Inactive*rem) / sbWindow,
				Fake:     (truth.Fake*fn - rest.Fake*rem) / sbWindow,
				Genuine:  (truth.Genuine*fn - rest.Genuine*rem) / sbWindow,
			})
		} else {
			rest = clampSimplex(rest)
		}
		return Layout{
			{Width: sbWindow, Mix: newest},
			{Width: 0, Mix: rest},
		}
	}

	// Three bands. Re-attribute the egg share of SP's fake column, then
	// solve the middle band from SP's window and the body from the truth.
	spAdj := Mix{
		Inactive: sp.Inactive + eggShift*sp.Fake,
		Fake:     (1 - eggShift) * sp.Fake,
		Genuine:  sp.Genuine,
	}
	mid := clampSimplex(solveWindow(spAdj, spWindow, bandObs{width: sbWindow, mix: sb}))
	body := solveRemainder(truth, float64(n), []bandObs{
		{width: sbWindow, mix: sb},
		{width: spWindow - sbWindow, mix: mid},
	})
	if !feasible(body) {
		// The SP view is inconsistent with the FC truth (the usual case on
		// heavily dormant accounts). Truth wins: clamp the body and
		// re-solve the middle band so the whole-list truth still holds.
		body = clampSimplex(body)
		// Re-solve the middle band for what the clamped body cannot absorb.
		fn := float64(n)
		rem := fn - spWindow
		mid = Mix{
			Inactive: (truth.Inactive*fn - sb.Inactive*sbWindow - body.Inactive*rem) / (spWindow - sbWindow),
			Fake:     (truth.Fake*fn - sb.Fake*sbWindow - body.Fake*rem) / (spWindow - sbWindow),
			Genuine:  (truth.Genuine*fn - sb.Genuine*sbWindow - body.Genuine*rem) / (spWindow - sbWindow),
		}
		mid = clampSimplex(mid)
	}
	return Layout{
		{Width: sbWindow, Mix: sb},
		{Width: spWindow - sbWindow, Mix: mid},
		{Width: 0, Mix: clampSimplex(body)},
	}
}

type bandObs struct {
	width int
	mix   Mix
}

// solveWindow solves for the unknown band of a window observation:
// obs*window = known.width*known.mix + (window-known.width)*x.
// The result is raw (possibly infeasible); callers clamp.
func solveWindow(obs Mix, window int, known bandObs) Mix {
	w := float64(window)
	kw := float64(known.width)
	rem := w - kw
	return Mix{
		Inactive: (obs.Inactive*w - known.mix.Inactive*kw) / rem,
		Fake:     (obs.Fake*w - known.mix.Fake*kw) / rem,
		Genuine:  (obs.Genuine*w - known.mix.Genuine*kw) / rem,
	}
}

// solveRemainder solves for the oldest band so the whole-list truth holds:
// truth*n = sum(band.width*band.mix) + (n - sum(widths))*x.
// The result is raw (possibly infeasible); callers clamp.
func solveRemainder(truth Mix, n float64, known []bandObs) Mix {
	var kw float64
	var acc Mix
	for _, b := range known {
		w := float64(b.width)
		kw += w
		acc.Inactive += b.mix.Inactive * w
		acc.Fake += b.mix.Fake * w
		acc.Genuine += b.mix.Genuine * w
	}
	rem := n - kw
	return Mix{
		Inactive: (truth.Inactive*n - acc.Inactive) / rem,
		Fake:     (truth.Fake*n - acc.Fake) / rem,
		Genuine:  (truth.Genuine*n - acc.Genuine) / rem,
	}
}

// feasible reports whether all components lie in [0,1] up to slack.
func feasible(m Mix) bool {
	const slack = 0.02
	within := func(v float64) bool { return v >= -slack && v <= 1+slack }
	return within(m.Inactive) && within(m.Fake) && within(m.Genuine)
}

// clampSimplex projects a raw mix onto the probability simplex by flooring
// negatives and renormalising.
func clampSimplex(m Mix) Mix { return m.Normalised() }
