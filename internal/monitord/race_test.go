package monitord

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/auditd"
)

// TestConcurrentSubmitsDuringScheduling is the paced-planes race regression
// test: interactive auditd submissions (with cache invalidations, the
// monitor-adversarial path) hammer the service WHILE the monitor's Tick
// loop schedules and awaits re-audit rounds over the same targets and the
// virtual clock advances concurrently. Run under -race in CI, it proves the
// scheduling planes — auditd queue/dedup/cache, monitord watch state, and
// the shard-striped store underneath the sim engines — share no unguarded
// state. Every interactive job must complete successfully, every tick must
// return cleanly, and each watch must accumulate rounds.
func TestConcurrentSubmitsDuringScheduling(t *testing.T) {
	tools := []*scriptedAuditor{
		{name: "alpha", frames: []frame{{fakePct: 20, followers: 1000}, {fakePct: 30, followers: 1100}}},
		{name: "beta", frames: []frame{{fakePct: 25, followers: 990}}},
	}
	mon, svc, clock := harness(t, Config{}, tools...)

	targets := make([]string, 6)
	for i := range targets {
		targets[i] = fmt.Sprintf("celebrity%d", i)
		mustWatch(t, mon, WatchSpec{Target: targets[i], Cadence: time.Hour})
	}

	const (
		ticks      = 30
		submitters = 4
		submits    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, submitters*submits+ticks)

	// The scheduling plane: ticks with the clock racing forward past each
	// watch's next-due instant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			clock.Advance(30 * time.Minute)
			if _, err := mon.Tick(context.Background()); err != nil {
				errs <- fmt.Errorf("tick %d: %w", i, err)
				return
			}
		}
	}()

	// The interactive plane: concurrent high-priority submits over the same
	// targets, half of them invalidating the cache first so the re-audit
	// and interactive paths collide on fresh engine runs, not cache hits.
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < submits; i++ {
				target := targets[(s+i)%len(targets)]
				if i%2 == 0 {
					svc.Invalidate(target)
				}
				snap, err := svc.Submit(auditd.JobSpec{Target: target, Priority: 10})
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %w", s, err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				snap, err = svc.Await(ctx, snap.ID)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("submitter %d await: %w", s, err)
					return
				}
				if snap.State != auditd.StateDone {
					errs <- fmt.Errorf("submitter %d: job %s ended %s: %s", s, snap.ID, snap.State, snap.Err)
					return
				}
			}
		}(s)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, target := range targets {
		status, ok := mon.Status(target)
		if !ok {
			t.Fatalf("watch %s vanished", target)
		}
		if status.Rounds == 0 {
			t.Errorf("watch %s completed no rounds despite %d ticks", target, ticks)
		}
	}
}
