package monitord

import (
	"fmt"
	"time"
)

// Point is one tool verdict in a target's time series.
type Point struct {
	// At is the (virtual) instant the underlying analysis was performed.
	At time.Time `json:"at"`
	// Round is the 1-based re-audit round that produced the point.
	Round int `json:"round"`
	// Followers is the target's follower count at analysis time.
	Followers int `json:"followers"`
	// Verdict percentages, as in core.Report.
	InactivePct float64 `json:"inactive_pct"`
	FakePct     float64 `json:"fake_pct"`
	GenuinePct  float64 `json:"genuine_pct"`
	// Cached reports whether the point was served from the result cache
	// (and therefore repeats an older analysis).
	Cached bool `json:"cached,omitempty"`
}

// Rules configures a watch's detectors. The zero value enables sensible
// defaults; set a threshold negative to disable that detector.
type Rules struct {
	// FakeThresholdPct raises ThresholdAlert when a tool's fake share
	// crosses this value from below (default 20).
	FakeThresholdPct float64 `json:"fake_threshold_pct,omitempty"`
	// SpikePct raises SpikeAlert when a tool's fake share moves by at
	// least this many points between consecutive rounds, in either
	// direction (default 10).
	SpikePct float64 `json:"spike_pct,omitempty"`
	// FollowRatePerDay raises BurstAlert when the follower count grows
	// faster than this many accounts per day between consecutive rounds —
	// the follow-rate burst of a purchase — and PurgeAlert when it shrinks
	// faster than the same rate (default 1000).
	FollowRatePerDay float64 `json:"follow_rate_per_day,omitempty"`
}

func (r Rules) withDefaults() Rules {
	if r.FakeThresholdPct == 0 {
		r.FakeThresholdPct = 20
	}
	if r.SpikePct == 0 {
		r.SpikePct = 10
	}
	if r.FollowRatePerDay == 0 {
		r.FollowRatePerDay = 1000
	}
	return r
}

// AlertKind labels a detector.
type AlertKind string

// Alert kinds.
const (
	// ThresholdAlert: a tool's fake share crossed the configured ceiling.
	ThresholdAlert AlertKind = "fake-threshold"
	// SpikeAlert: a tool's fake share jumped between consecutive rounds.
	SpikeAlert AlertKind = "fake-spike"
	// BurstAlert: the follower count grew anomalously fast (a purchase
	// burst landing at the newest end of the list).
	BurstAlert AlertKind = "follow-burst"
	// PurgeAlert: the follower count shrank anomalously fast (a platform
	// purge or mass unfollow).
	PurgeAlert AlertKind = "follow-purge"
)

// Alert is one raised alert.
type Alert struct {
	At     time.Time `json:"at"`
	Target string    `json:"target"`
	Tool   string    `json:"tool"`
	Kind   AlertKind `json:"kind"`
	// Value is the measurement that tripped the rule and Threshold the
	// configured limit (fake share in points, or followers/day).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// evaluate applies the per-tool verdict rules (threshold crossing, spike)
// to a fresh point, given the previous point of the same (target, tool)
// series. The follow-rate rules live in evaluateRate: follower count is a
// property of the target, not of a tool, so they run once per round.
func evaluate(spec WatchSpec, tool string, prev Point, hasPrev bool, cur Point) []Alert {
	if !hasPrev {
		return nil // the first point is the baseline
	}
	rules := spec.Rules
	var alerts []Alert

	if rules.FakeThresholdPct > 0 && prev.FakePct < rules.FakeThresholdPct && cur.FakePct >= rules.FakeThresholdPct {
		alerts = append(alerts, Alert{
			At: cur.At, Target: spec.Target, Tool: tool, Kind: ThresholdAlert,
			Value: cur.FakePct, Threshold: rules.FakeThresholdPct,
			Message: fmt.Sprintf("@%s fake share %.1f%% crossed %.1f%% (%s)",
				spec.Target, cur.FakePct, rules.FakeThresholdPct, tool),
		})
	}
	if delta := cur.FakePct - prev.FakePct; rules.SpikePct > 0 && abs(delta) >= rules.SpikePct {
		alerts = append(alerts, Alert{
			At: cur.At, Target: spec.Target, Tool: tool, Kind: SpikeAlert,
			Value: delta, Threshold: rules.SpikePct,
			Message: fmt.Sprintf("@%s fake share moved %+.1f points in one round (%s)",
				spec.Target, delta, tool),
		})
	}
	return alerts
}

// evaluateRate applies the target-level follow-rate rules between two
// observed follower counts. It runs once per round, on the round's first
// successful point regardless of which tool produced it, so one platform
// burst raises one alert — and a failure of any single tool cannot hide
// the event.
func evaluateRate(spec WatchSpec, tool string, prev, cur Point) []Alert {
	rules := spec.Rules
	if rules.FollowRatePerDay <= 0 {
		return nil
	}
	days := cur.At.Sub(prev.At).Hours() / 24
	if days <= 0 {
		return nil
	}
	rate := float64(cur.Followers-prev.Followers) / days
	switch {
	case rate >= rules.FollowRatePerDay:
		return []Alert{{
			At: cur.At, Target: spec.Target, Tool: tool, Kind: BurstAlert,
			Value: rate, Threshold: rules.FollowRatePerDay,
			Message: fmt.Sprintf("@%s gained %.0f followers/day (limit %.0f)",
				spec.Target, rate, rules.FollowRatePerDay),
		}}
	case rate <= -rules.FollowRatePerDay:
		return []Alert{{
			At: cur.At, Target: spec.Target, Tool: tool, Kind: PurgeAlert,
			Value: rate, Threshold: rules.FollowRatePerDay,
			Message: fmt.Sprintf("@%s lost %.0f followers/day (limit %.0f)",
				spec.Target, -rate, rules.FollowRatePerDay),
		}}
	}
	return nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// ring is a fixed-capacity chronological buffer; the oldest entry is
// overwritten once full. It backs both the per-(target, tool) verdict
// series and the alert log.
type ring[T any] struct {
	buf   []T
	start int // index of the oldest entry
	n     int // live entries
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring[T]) last() (T, bool) {
	if r.n == 0 {
		var zero T
		return zero, false
	}
	return r.buf[(r.start+r.n-1)%len(r.buf)], true
}

// items returns the buffered entries, oldest first.
func (r *ring[T]) items() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}
