package monitord

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/benchjson"
	"fakeproject/internal/core"
	"fakeproject/internal/simclock"
)

// benchMonitor builds a monitor over instant stub tools watching `targets`
// accounts on a 24h cadence.
func benchMonitor(b *testing.B, targets, tools int) (*Monitor, *simclock.Virtual) {
	b.Helper()
	clock := simclock.NewVirtualAtEpoch()
	factories := make(map[string]auditd.Factory, tools)
	for i := 0; i < tools; i++ {
		name := fmt.Sprintf("tool%d", i)
		factories[name] = func(int) (core.Auditor, error) {
			return benchTool{name: name}, nil
		}
	}
	svc, err := auditd.New(auditd.Config{Workers: 4, Clock: clock, Tools: factories})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	mon, err := New(Config{Service: svc, Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(mon.Close)
	for i := 0; i < targets; i++ {
		if err := mon.Watch(WatchSpec{Target: fmt.Sprintf("t%d", i), Cadence: 24 * time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
	return mon, clock
}

type benchTool struct{ name string }

func (t benchTool) Name() string { return t.name }
func (t benchTool) Audit(target string) (core.Report, error) {
	return core.Report{Tool: t.name, FakePct: 10, GenuinePct: 90}, nil
}

// BenchmarkMonitorTick measures one full re-audit round: 8 watched targets
// × 4 tools scheduled, executed, ingested and rule-checked — the per-
// simulated-day cost of the monitoring plane itself (engine work excluded
// by instant stub tools).
func BenchmarkMonitorTick(b *testing.B) {
	mon, clock := benchMonitor(b, 8, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(24 * time.Hour)
		n, err := mon.Tick(context.Background())
		if err != nil || n != 8 {
			b.Fatalf("tick ran %d watches: %v", n, err)
		}
	}
}

// TestBenchJSON emits BENCH_monitord.json with the suite's representative
// numbers when BENCH_JSON=<dir> is set (the CI bench step):
//
//	BENCH_JSON=. go test ./internal/monitord -run BenchJSON
func TestBenchJSON(t *testing.T) {
	if !benchjson.Enabled() {
		t.Skipf("set %s=<dir> to emit benchmark JSON", benchjson.EnvVar)
	}
	results := []benchjson.Result{
		benchjson.Measure("MonitorTick/targets=8,tools=4", func(b *testing.B) {
			mon, clock := benchMonitor(b, 8, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(24 * time.Hour)
				if _, err := mon.Tick(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchjson.Measure("SeriesQuery/full-ring", func(b *testing.B) {
			mon, clock := benchMonitor(b, 1, 4)
			for i := 0; i < 300; i++ {
				clock.Advance(24 * time.Hour)
				if _, err := mon.Tick(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := mon.Series("t0"); !ok {
					b.Fatal("series query failed")
				}
			}
		}),
	}
	path, err := benchjson.Write("monitord", results)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// BenchmarkSeriesQuery measures the read path with full rings.
func BenchmarkSeriesQuery(b *testing.B) {
	mon, clock := benchMonitor(b, 1, 4)
	for i := 0; i < 300; i++ { // overfill the default 256-cap rings
		clock.Advance(24 * time.Hour)
		if _, err := mon.Tick(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, ok := mon.Series("t0")
		if !ok || len(series) != 4 {
			b.Fatal("series query failed")
		}
	}
}
