// Package monitord is the continuous-monitoring subsystem of the
// reproduction: where auditd answers one-shot "how fake is this account?"
// requests, monitord keeps a watchlist of standing targets and re-audits
// them on a cadence over (virtual) time, building per-tool time series of
// verdicts and raising alerts when the series drift or spike.
//
// The paper's central objects are temporal: follower lists that only ever
// append (Section IV-B), crawls that take 27 days while the list moves
// underneath them, and tools whose sampling windows see only the newest
// slice of a drifting population. monitord operationalises that: a fake-
// follower purchase lands at the newest end of the list, the window-limited
// tools spike within one re-audit, and the whole-list FC estimate moves
// slowly — the Table III divergence, observed live instead of in a single
// snapshot.
//
// Scheduling rides on the auditd serving layer: re-audits are submitted as
// low-priority jobs, so interactive (user-facing) audits always preempt the
// background watch traffic — the queue discipline a production audit
// service would run.
package monitord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
)

// Errors returned by watch management.
var (
	// ErrBadWatch reports an invalid watch specification.
	ErrBadWatch = errors.New("monitord: invalid watch spec")
	// ErrUnknownTarget reports an operation on a target that is not watched.
	ErrUnknownTarget = errors.New("monitord: target not watched")
	// ErrClosed reports an operation on a stopped monitor.
	ErrClosed = errors.New("monitord: monitor closed")
)

// DefaultBackgroundPriority is the auditd priority of re-audit jobs: any
// interactive submission (priority 0 and above) runs first.
const DefaultBackgroundPriority = -10

// Config configures a Monitor.
type Config struct {
	// Service executes the re-audits. Required.
	Service *auditd.Service
	// Clock drives cadences and point timestamps (default: real clock).
	Clock simclock.Clock
	// SeriesCap bounds each (target, tool) ring buffer (default 256).
	SeriesCap int
	// AlertCap bounds the retained alerts (default 1024, oldest dropped).
	AlertCap int
	// BackgroundPriority is the job priority of re-audits (default -10).
	// It must be negative so interactive submissions preempt the watch.
	BackgroundPriority int
	// ReuseCached leaves the service's result cache alone. By default the
	// monitor invalidates a target's cached results before each re-audit
	// round, so cadences shorter than the cache TTL still observe the live
	// platform rather than replaying a stale verdict.
	ReuseCached bool
	// BeforeRound, when set, is called before a round's jobs are submitted
	// — the hook platform dynamics ride on (churn applied here is what the
	// round's audits observe, consistently across tools).
	BeforeRound func(target string)
	// OnRound, when set, is called after a round's jobs are submitted and
	// before they are awaited — the hook experiments use to inject
	// interactive traffic while background work is queued.
	OnRound func(target string, jobs []auditd.JobID)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.SeriesCap <= 0 {
		c.SeriesCap = 256
	}
	if c.AlertCap <= 0 {
		c.AlertCap = 1024
	}
	if c.BackgroundPriority >= 0 {
		c.BackgroundPriority = DefaultBackgroundPriority
	}
	return c
}

// WatchSpec registers one target for continuous monitoring.
type WatchSpec struct {
	// Target is the screen name to monitor.
	Target string `json:"target"`
	// Tools lists the engines to track (empty = every configured tool).
	Tools []string `json:"tools,omitempty"`
	// Cadence is the re-audit interval (default 24h of service-clock time).
	Cadence time.Duration `json:"cadence,omitempty"`
	// Rules configures this watch's alerting thresholds.
	Rules Rules `json:"rules"`
}

// WatchStatus is the public view of a registered watch.
type WatchStatus struct {
	Spec WatchSpec `json:"spec"`
	// Rounds counts completed re-audit rounds.
	Rounds int `json:"rounds"`
	// LastRun and NextDue bracket the schedule on the monitor's clock.
	LastRun time.Time `json:"last_run,omitzero"`
	NextDue time.Time `json:"next_due"`
	// LastError is the most recent tool failure (empty after a clean
	// round). A watch registered for a target the backend doesn't know
	// shows its resolution error here instead of silently staying empty.
	LastError string `json:"last_error,omitempty"`
}

// watch is the internal mutable record of one monitored target.
type watch struct {
	spec    WatchSpec
	rounds  int
	lastRun time.Time
	nextDue time.Time
	series  map[string]*ring[Point] // tool → verdict ring
	// lastErr is the most recent tool failure message (empty after a fully
	// clean round); surfaced in WatchStatus so a watch whose audits always
	// fail (e.g. a mistyped target) is distinguishable from a quiet one.
	lastErr string
	// Round-level follow-rate state: the first successful observation of
	// each round carries the rate rules (see evaluateRate).
	ratePrev  Point
	rateHas   bool
	rateRound int
}

// Monitor is a continuous fake-follower monitor over an audit service.
type Monitor struct {
	cfg   Config
	svc   *auditd.Service
	clock simclock.Clock

	mu      sync.Mutex
	watches map[string]*watch
	alerts  *ring[Alert]
	closed  bool
	// wake nudges a paced Run loop when the watchlist changes.
	wake chan struct{}

	// Observability state (all guarded by mu): alertCounts tallies every
	// alert ever raised per detector kind (retention-independent, unlike
	// the alert ring), roundsTotal counts completed re-audit rounds, and
	// lastTickLag is how late the most recent Tick found its most overdue
	// watch — the scheduler's backlog signal.
	alertCounts map[AlertKind]uint64
	roundsTotal uint64
	lastTickLag time.Duration
}

// New creates a monitor over cfg.Service.
func New(cfg Config) (*Monitor, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("monitord: no audit service configured")
	}
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:         cfg,
		svc:         cfg.Service,
		clock:       cfg.Clock,
		watches:     make(map[string]*watch),
		alerts:      newRing[Alert](cfg.AlertCap),
		wake:        make(chan struct{}, 1),
		alertCounts: make(map[AlertKind]uint64),
	}, nil
}

// Watch registers a watch, or updates the spec of an already-watched
// target in place: accumulated series, round counts and alert baselines
// survive a rules or cadence change (series of tools dropped from the new
// spec are discarded). The next re-audit becomes due immediately, so a
// following Tick (re)baselines the series.
func (m *Monitor) Watch(spec WatchSpec) error {
	if strings.TrimSpace(spec.Target) == "" {
		return fmt.Errorf("%w: empty target", ErrBadWatch)
	}
	if spec.Cadence < 0 {
		return fmt.Errorf("%w: negative cadence", ErrBadWatch)
	}
	if spec.Cadence == 0 {
		spec.Cadence = 24 * time.Hour
	}
	known := make(map[string]bool)
	for _, tool := range m.svc.Tools() {
		known[tool] = true
	}
	if len(spec.Tools) == 0 {
		spec.Tools = m.svc.Tools()
	} else {
		for _, tool := range spec.Tools {
			if !known[tool] {
				return fmt.Errorf("%w: unknown tool %q", ErrBadWatch, tool)
			}
		}
	}
	spec.Rules = spec.Rules.withDefaults()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	w := &watch{
		spec:    spec,
		nextDue: m.clock.Now(),
		series:  make(map[string]*ring[Point], len(spec.Tools)),
	}
	if old, ok := m.watches[spec.Target]; ok {
		// A spec update must not destroy the history behind it.
		w.rounds = old.rounds
		w.lastRun = old.lastRun
		w.lastErr = old.lastErr
		w.ratePrev, w.rateHas, w.rateRound = old.ratePrev, old.rateHas, old.rateRound
		for _, tool := range spec.Tools {
			if r, kept := old.series[tool]; kept {
				w.series[tool] = r
			}
		}
	}
	for _, tool := range spec.Tools {
		if w.series[tool] == nil {
			w.series[tool] = newRing[Point](m.cfg.SeriesCap)
		}
	}
	m.watches[spec.Target] = w
	m.signal()
	return nil
}

// Unwatch removes a target from the watchlist, dropping its series with
// it. Already-raised alerts stay queryable until they age out of the
// alert ring.
func (m *Monitor) Unwatch(target string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.watches[target]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTarget, target)
	}
	delete(m.watches, target)
	return nil
}

// Watches lists the registered watches, sorted by target.
func (m *Monitor) Watches() []WatchStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WatchStatus, 0, len(m.watches))
	for _, w := range m.watches {
		out = append(out, w.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Target < out[j].Spec.Target })
	return out
}

// Status returns one watch's schedule state.
func (m *Monitor) Status(target string) (WatchStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.watches[target]
	if !ok {
		return WatchStatus{}, false
	}
	return w.status(), true
}

// status snapshots the watch; callers hold the monitor's mutex.
func (w *watch) status() WatchStatus {
	return WatchStatus{
		Spec:      w.spec,
		Rounds:    w.rounds,
		LastRun:   w.lastRun,
		NextDue:   w.nextDue,
		LastError: w.lastErr,
	}
}

func (m *Monitor) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Close stops intake; a paced Run loop exits on its next scan.
func (m *Monitor) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.signal()
}

// Tick runs one scheduler pass: every watch whose nextDue has arrived is
// re-audited (all its tools as individual low-priority jobs), the results
// are appended to the per-tool series, and the alert rules are evaluated
// on the fresh points. Tick blocks until the round's jobs finish and
// returns how many watches ran.
//
// Tick is the deterministic core the experiments drive day by day; the
// daemon wraps it in Run.
func (m *Monitor) Tick(ctx context.Context) (int, error) {
	now := m.clock.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	due := make([]*watch, 0, len(m.watches))
	var lag time.Duration
	for _, w := range m.watches {
		if !w.nextDue.After(now) {
			due = append(due, w)
			if l := now.Sub(w.nextDue); l > lag {
				lag = l
			}
		}
	}
	m.lastTickLag = lag
	m.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].spec.Target < due[j].spec.Target })

	ran := 0
	for _, w := range due {
		if err := m.runRound(ctx, w); err != nil {
			return ran, err
		}
		ran++
	}
	return ran, nil
}

// roundJob pairs a submitted job with the tool it re-audits. deduped is
// the submit-time flag: true when the submission coalesced onto a job that
// predates this round (the awaited snapshot's Deduped can also be set by
// later interactive coalescers, so it cannot be used for this).
type roundJob struct {
	tool    string
	id      auditd.JobID
	deduped bool
}

// runRound executes one re-audit round for one watch.
func (m *Monitor) runRound(ctx context.Context, w *watch) error {
	target := w.spec.Target
	if m.cfg.BeforeRound != nil {
		m.cfg.BeforeRound(target)
	}
	if !m.cfg.ReuseCached {
		m.svc.Invalidate(target, w.spec.Tools...)
	}

	// One job per tool: finer preemption granularity (an interactive audit
	// slots in between two background tool runs rather than behind all of
	// them) and a per-tool point even when another tool fails.
	m.mu.Lock()
	w.lastErr = "" // a clean round clears the sticky failure
	m.mu.Unlock()

	jobs := make([]roundJob, 0, len(w.spec.Tools))
	for _, tool := range w.spec.Tools {
		snap, err := m.svc.Submit(auditd.JobSpec{
			Target:   target,
			Tools:    []string{tool},
			Priority: m.cfg.BackgroundPriority,
		})
		if err != nil {
			// Backpressure or shutdown: skip the rest of this round and
			// try again at the next cadence instead of wedging the
			// scheduler — but leave the failure on record so the watch is
			// distinguishable from a quiet one.
			m.mu.Lock()
			w.lastErr = tool + ": " + err.Error()
			m.mu.Unlock()
			break
		}
		jobs = append(jobs, roundJob{tool: tool, id: snap.ID, deduped: snap.Deduped})
	}
	if m.cfg.OnRound != nil {
		ids := make([]auditd.JobID, 0, len(jobs))
		for _, j := range jobs {
			ids = append(ids, j.id)
		}
		m.cfg.OnRound(target, ids)
	}

	for _, j := range jobs {
		snap, err := m.svc.Await(ctx, j.id)
		if err != nil {
			return fmt.Errorf("monitord: awaiting %s/%s: %w", target, j.tool, err)
		}
		if j.deduped && !m.cfg.ReuseCached {
			// The submission coalesced onto an analysis that started before
			// this round's state (e.g. an in-flight interactive audit from
			// before the churn hook ran). Its verdict is honest but stale;
			// chase it with one fresh follow-up so the series point
			// reflects the round it is recorded under.
			if fresh, ok := m.resubmit(ctx, target, j.tool); ok {
				snap = fresh
			}
		}
		m.ingest(w, j.tool, snap)
	}

	m.mu.Lock()
	w.rounds++
	m.roundsTotal++
	w.lastRun = m.clock.Now()
	w.nextDue = w.lastRun.Add(w.spec.Cadence)
	m.mu.Unlock()
	return nil
}

// resubmit invalidates and re-runs one (target, tool) audit, returning the
// fresh snapshot. It retries the coalescing race once, not in a loop.
func (m *Monitor) resubmit(ctx context.Context, target, tool string) (auditd.JobSnapshot, bool) {
	m.svc.Invalidate(target, tool)
	snap, err := m.svc.Submit(auditd.JobSpec{
		Target:   target,
		Tools:    []string{tool},
		Priority: m.cfg.BackgroundPriority,
	})
	if err != nil {
		return auditd.JobSnapshot{}, false
	}
	if !snap.State.Terminal() {
		if snap, err = m.svc.Await(ctx, snap.ID); err != nil {
			return auditd.JobSnapshot{}, false
		}
	}
	return snap, true
}

// ingest appends one tool verdict to the watch's series and evaluates the
// alert rules against the previous point.
func (m *Monitor) ingest(w *watch, tool string, snap auditd.JobSnapshot) {
	res, ok := snap.Results[tool]
	if !ok || res.Err != "" || snap.State != auditd.StateDone {
		// Failed audits leave no point: a gap in the series, like a crawl
		// that errored in the field. The failure itself is surfaced via
		// WatchStatus.LastError.
		m.mu.Lock()
		switch {
		case res.Err != "":
			w.lastErr = tool + ": " + res.Err
		case snap.Err != "":
			w.lastErr = tool + ": " + snap.Err
		default:
			w.lastErr = tool + ": job ended in state " + string(snap.State)
		}
		m.mu.Unlock()
		return
	}
	rep := res.Report
	point := Point{
		At:          rep.AssessedAt,
		Round:       w.rounds + 1,
		Followers:   rep.Target.FollowersCount,
		InactivePct: rep.InactivePct,
		FakePct:     rep.FakePct,
		GenuinePct:  rep.GenuinePct,
		Cached:      res.CacheHit,
	}
	if point.At.IsZero() {
		point.At = m.clock.Now()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	ring := w.series[tool]
	prev, hasPrev := ring.last()
	ring.push(point)
	for _, alert := range evaluate(w.spec, tool, prev, hasPrev, point) {
		m.alerts.push(alert)
		m.alertCounts[alert.Kind]++
	}
	// The round's first successful observation carries the target-level
	// follow-rate rules, whichever tool produced it.
	if point.Round != w.rateRound {
		w.rateRound = point.Round
		if w.rateHas {
			for _, alert := range evaluateRate(w.spec, tool, w.ratePrev, point) {
				m.alerts.push(alert)
				m.alertCounts[alert.Kind]++
			}
		}
		w.ratePrev = point
		w.rateHas = true
	}
}

// Series returns the per-tool verdict series of a target (chronological)
// and whether the target has any recorded series.
func (m *Monitor) Series(target string) (map[string][]Point, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.watches[target]
	if !ok {
		return nil, false
	}
	out := make(map[string][]Point, len(w.series))
	for tool, r := range w.series {
		out[tool] = r.items()
	}
	return out, true
}

// Alerts returns the retained alerts, oldest first; target filters when
// non-empty.
func (m *Monitor) Alerts(target string) []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := m.alerts.items()
	if target == "" {
		return all
	}
	out := all[:0]
	for _, a := range all {
		if a.Target == target {
			out = append(out, a)
		}
	}
	return out
}

// WatchCount reports the current watchlist size.
func (m *Monitor) WatchCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.watches)
}

// AlertCounts reports how many alerts each detector kind has ever raised.
// Unlike Alerts it is unaffected by ring retention.
func (m *Monitor) AlertCounts() map[AlertKind]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[AlertKind]uint64, len(m.alertCounts))
	for k, v := range m.alertCounts {
		out[k] = v
	}
	return out
}

// RoundsTotal reports completed re-audit rounds across all watches.
func (m *Monitor) RoundsTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.roundsTotal
}

// TickLag reports how late the most recent scheduler pass found its most
// overdue watch — persistent growth means rounds take longer than the
// cadence allows.
func (m *Monitor) TickLag() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastTickLag
}

// Observe exports the monitor's operational signals into reg: watchlist
// size, scheduler lag, round throughput and one alert counter per detector
// kind, all evaluated at scrape time.
func (m *Monitor) Observe(reg *metrics.Registry) {
	reg.GaugeFunc("monitord_watchlist_size", "Targets under continuous monitoring.",
		func() float64 { return float64(m.WatchCount()) })
	reg.GaugeFunc("monitord_tick_lag_seconds",
		"How late the last scheduler pass found its most overdue watch.",
		func() float64 { return m.TickLag().Seconds() })
	reg.CounterFunc("monitord_rounds_total", "Completed re-audit rounds.",
		func() float64 { return float64(m.RoundsTotal()) })
	for _, kind := range []AlertKind{ThresholdAlert, SpikeAlert, BurstAlert, PurgeAlert} {
		kind := kind
		reg.CounterFunc("monitord_alerts_total", "Alerts raised, by detector kind.",
			func() float64 {
				m.mu.Lock()
				defer m.mu.Unlock()
				return float64(m.alertCounts[kind])
			}, metrics.L("kind", string(kind)))
	}
}

// Run drives the scheduler until ctx is cancelled or the monitor closes.
// Dueness is measured on the monitor's clock; pace throttles scheduler
// scans on the *wall* clock.
//
// With a real clock, pass pace 0: Run sleeps on the clock until the next
// watch is due. With a virtual clock a pure clock-driven loop would spin —
// every virtual sleep returns instantly — so pass a positive pace: each
// wall interval, Run advances the virtual clock to the next due instant
// and ticks, compressing simulated days into real seconds at a bounded
// rate.
func (m *Monitor) Run(ctx context.Context, pace time.Duration) error {
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil
		}
		var next time.Time
		for _, w := range m.watches {
			if next.IsZero() || w.nextDue.Before(next) {
				next = w.nextDue
			}
		}
		m.mu.Unlock()

		if pace > 0 {
			select {
			//fp:allow walltime crawl pacing throttles real outbound request rate
			case <-time.After(pace):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if next.IsZero() {
			// Empty watchlist: wait for a registration.
			if pace > 0 {
				continue
			}
			select {
			case <-m.wake:
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if wait := next.Sub(m.clock.Now()); wait > 0 {
			if v, ok := m.clock.(*simclock.Virtual); ok {
				// Virtual time is free: jump straight to the due instant.
				v.Advance(wait)
			} else {
				select {
				//fp:allow walltime a real clock waits out the gap in real time
				case <-time.After(wait):
				case <-m.wake:
					continue // watchlist changed; recompute the next due
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if _, err := m.Tick(ctx); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
	}
}
