package monitord

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// frame is one scripted platform observation.
type frame struct {
	fakePct   float64
	followers int
}

// scriptedAuditor replays a fixed sequence of observations, one per Audit
// call, holding the last frame once the script runs out — a platform whose
// state the test controls round by round. A non-empty failFor makes audits
// of that target error.
type scriptedAuditor struct {
	name    string
	failFor string

	mu     sync.Mutex
	frames []frame
	cursor int
	calls  int
}

func (a *scriptedAuditor) Name() string { return a.name }

func (a *scriptedAuditor) Audit(target string) (core.Report, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	if a.failFor != "" && a.failFor == target {
		return core.Report{}, errors.New("user " + target + " not found")
	}
	f := a.frames[a.cursor]
	if a.cursor < len(a.frames)-1 {
		a.cursor++
	}
	return core.Report{
		Tool:       a.name,
		Target:     twitter.Profile{User: twitter.User{ScreenName: target}, FollowersCount: f.followers},
		FakePct:    f.fakePct,
		GenuinePct: 100 - f.fakePct,
	}, nil
}

func (a *scriptedAuditor) callCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

// harness builds an audit service + monitor over scripted tools on one
// virtual clock.
func harness(t *testing.T, cfg Config, tools ...*scriptedAuditor) (*Monitor, *auditd.Service, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	factories := make(map[string]auditd.Factory, len(tools))
	for _, tool := range tools {
		tool := tool
		factories[tool.name] = func(int) (core.Auditor, error) { return tool, nil }
	}
	svc, err := auditd.New(auditd.Config{
		Workers: 2,
		Clock:   clock,
		Tools:   factories,
		// A never-expiring cache is the adversarial case for a monitor:
		// only explicit invalidation yields fresh observations.
		CacheTTL: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	cfg.Service = svc
	cfg.Clock = clock
	mon, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Close)
	return mon, svc, clock
}

func mustWatch(t *testing.T, mon *Monitor, spec WatchSpec) {
	t.Helper()
	if err := mon.Watch(spec); err != nil {
		t.Fatal(err)
	}
}

func mustTick(t *testing.T, mon *Monitor) int {
	t.Helper()
	n, err := mon.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWatchValidation(t *testing.T) {
	mon, _, _ := harness(t, Config{}, &scriptedAuditor{name: "alpha", frames: []frame{{}}})
	if err := mon.Watch(WatchSpec{Target: "  "}); err == nil {
		t.Fatal("empty target accepted")
	}
	if err := mon.Watch(WatchSpec{Target: "x", Tools: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown tool accepted")
	}
	if err := mon.Watch(WatchSpec{Target: "x", Cadence: -time.Hour}); err == nil {
		t.Fatal("negative cadence accepted")
	}
	if err := mon.Unwatch("never"); err == nil {
		t.Fatal("unwatch of unknown target succeeded")
	}
}

func TestCadenceSchedulesRounds(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{{fakePct: 5, followers: 1000}}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour})

	if n := mustTick(t, mon); n != 1 {
		t.Fatalf("first tick ran %d watches, want 1 (baseline due immediately)", n)
	}
	if n := mustTick(t, mon); n != 0 {
		t.Fatalf("second tick ran %d watches, want 0 (not yet due)", n)
	}
	clock.Advance(24 * time.Hour)
	if n := mustTick(t, mon); n != 1 {
		t.Fatalf("tick after a day ran %d watches, want 1", n)
	}
	series, ok := mon.Series("davc")
	if !ok || len(series["alpha"]) != 2 {
		t.Fatalf("series = %v, %v; want 2 alpha points", series, ok)
	}
	status := mon.Watches()
	if len(status) != 1 || status[0].Rounds != 2 {
		t.Fatalf("watch status = %+v, want 2 rounds", status)
	}
	if !status[0].NextDue.After(clock.Now().Add(23 * time.Hour)) {
		t.Fatalf("next due %v not ~a day out from %v", status[0].NextDue, clock.Now())
	}
}

func TestFreshObservationsDespiteEternalCache(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 5, followers: 1000},
		{fakePct: 9, followers: 1100},
		{fakePct: 13, followers: 1200},
	}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour})
	for i := 0; i < 3; i++ {
		mustTick(t, mon)
		clock.Advance(24 * time.Hour)
	}
	series, _ := mon.Series("davc")
	points := series["alpha"]
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i, want := range []float64{5, 9, 13} {
		if points[i].FakePct != want {
			t.Fatalf("point %d fake = %.1f, want %.1f (stale cache?)", i, points[i].FakePct, want)
		}
		if points[i].Cached {
			t.Fatalf("point %d served from cache", i)
		}
	}
	if alpha.callCount() != 3 {
		t.Fatalf("engine ran %d times, want 3", alpha.callCount())
	}
}

func TestReuseCachedKeepsStaleVerdicts(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 5, followers: 1000},
		{fakePct: 50, followers: 5000},
	}}
	mon, _, clock := harness(t, Config{ReuseCached: true}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour})
	mustTick(t, mon)
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)
	series, _ := mon.Series("davc")
	points := series["alpha"]
	if len(points) != 2 || points[1].FakePct != 5 || !points[1].Cached {
		t.Fatalf("points = %+v; want the second to replay the cached 5%%", points)
	}
	if alpha.callCount() != 1 {
		t.Fatalf("engine ran %d times, want 1 (cache reuse)", alpha.callCount())
	}
}

func TestAlertRules(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 8, followers: 10000},  // baseline
		{fakePct: 9, followers: 10150},  // quiet day
		{fakePct: 34, followers: 14000}, // purchase burst lands
		{fakePct: 30, followers: 13950}, // settles
		{fakePct: 12, followers: 9500},  // purge sweep
	}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{
		Target:  "davc",
		Cadence: 24 * time.Hour,
		Rules:   Rules{FakeThresholdPct: 20, SpikePct: 10, FollowRatePerDay: 1000},
	})
	for i := 0; i < 5; i++ {
		mustTick(t, mon)
		clock.Advance(24 * time.Hour)
	}

	kinds := map[AlertKind]int{}
	for _, a := range mon.Alerts("davc") {
		kinds[a.Kind]++
		if a.Target != "davc" || a.Tool != "alpha" || a.Message == "" {
			t.Fatalf("malformed alert %+v", a)
		}
	}
	if kinds[ThresholdAlert] != 1 {
		t.Fatalf("threshold alerts = %d, want 1 (single upward crossing)", kinds[ThresholdAlert])
	}
	if kinds[SpikeAlert] != 2 {
		t.Fatalf("spike alerts = %d, want 2 (burst up, purge down)", kinds[SpikeAlert])
	}
	if kinds[BurstAlert] != 1 {
		t.Fatalf("burst alerts = %d, want 1", kinds[BurstAlert])
	}
	if kinds[PurgeAlert] != 1 {
		t.Fatalf("purge alerts = %d, want 1", kinds[PurgeAlert])
	}
	// Quiet days raise nothing: total is exactly the sum above.
	if len(mon.Alerts("")) != 5 {
		t.Fatalf("total alerts = %d, want 5", len(mon.Alerts("")))
	}
}

func TestSeriesRingBounded(t *testing.T) {
	frames := make([]frame, 0, 12)
	for i := 0; i < 12; i++ {
		frames = append(frames, frame{fakePct: float64(i), followers: 1000 + i})
	}
	alpha := &scriptedAuditor{name: "alpha", frames: frames}
	mon, _, clock := harness(t, Config{SeriesCap: 4}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: time.Hour, Rules: Rules{
		FakeThresholdPct: -1, SpikePct: -1, FollowRatePerDay: -1,
	}})
	for i := 0; i < 12; i++ {
		mustTick(t, mon)
		clock.Advance(time.Hour)
	}
	series, _ := mon.Series("davc")
	points := series["alpha"]
	if len(points) != 4 {
		t.Fatalf("ring holds %d points, want 4", len(points))
	}
	for i, p := range points {
		if want := float64(8 + i); p.FakePct != want {
			t.Fatalf("ring[%d] fake = %.0f, want %.0f (oldest evicted first)", i, p.FakePct, want)
		}
	}
	if points[3].Round != 12 {
		t.Fatalf("newest round = %d, want 12", points[3].Round)
	}
}

func TestDisabledRulesRaiseNothing(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 0, followers: 1000},
		{fakePct: 90, followers: 99000},
	}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: time.Hour, Rules: Rules{
		FakeThresholdPct: -1, SpikePct: -1, FollowRatePerDay: -1,
	}})
	mustTick(t, mon)
	clock.Advance(time.Hour)
	mustTick(t, mon)
	if alerts := mon.Alerts(""); len(alerts) != 0 {
		t.Fatalf("disabled rules raised %v", alerts)
	}
}

// TestAlertRulesOncePerRound: watching with several tools, one platform
// burst raises exactly one follow-burst alert per event, while the verdict
// rules still fire per tool series.
func TestAlertRulesOncePerRound(t *testing.T) {
	mkFrames := func() []frame {
		return []frame{
			{fakePct: 8, followers: 10000},
			{fakePct: 34, followers: 14000}, // burst lands
		}
	}
	alpha := &scriptedAuditor{name: "alpha", frames: mkFrames()}
	beta := &scriptedAuditor{name: "beta", frames: mkFrames()}
	mon, _, clock := harness(t, Config{}, alpha, beta)
	mustWatch(t, mon, WatchSpec{
		Target:  "davc",
		Cadence: 24 * time.Hour,
		Rules:   Rules{FakeThresholdPct: 20, SpikePct: 10, FollowRatePerDay: 1000},
	})
	mustTick(t, mon)
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)

	kinds := map[AlertKind]int{}
	for _, a := range mon.Alerts("davc") {
		kinds[a.Kind]++
	}
	if kinds[BurstAlert] != 1 {
		t.Fatalf("burst alerts = %d, want 1 (one platform event, two tools)", kinds[BurstAlert])
	}
	if kinds[ThresholdAlert] != 2 || kinds[SpikeAlert] != 2 {
		t.Fatalf("verdict alerts = %+v, want per-tool threshold and spike", kinds)
	}
}

// TestRateRuleSurvivesFirstToolFailure: the burst is still detected when
// the watch's first tool errors on the burst round — the rate rules ride
// whichever tool observes the round first.
func TestRateRuleSurvivesFirstToolFailure(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", failFor: "davc"} // always errors
	beta := &scriptedAuditor{name: "beta", frames: []frame{
		{fakePct: 8, followers: 10000},
		{fakePct: 8, followers: 14000},
	}}
	mon, _, clock := harness(t, Config{}, alpha, beta)
	mustWatch(t, mon, WatchSpec{
		Target:  "davc",
		Tools:   []string{"alpha", "beta"}, // the failing tool first
		Cadence: 24 * time.Hour,
		Rules:   Rules{FakeThresholdPct: -1, SpikePct: -1, FollowRatePerDay: 1000},
	})
	mustTick(t, mon)
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)

	var burst int
	for _, a := range mon.Alerts("davc") {
		if a.Kind == BurstAlert {
			burst++
			if a.Tool != "beta" {
				t.Fatalf("burst attributed to %q, want the observing tool beta", a.Tool)
			}
		}
	}
	if burst != 1 {
		t.Fatalf("burst alerts = %d, want 1 despite the first tool failing", burst)
	}
}

// gatedScripted blocks its first Audit call until the gate opens — an
// in-flight interactive analysis the monitor's round can coalesce onto.
type gatedScripted struct {
	scriptedAuditor
	gate chan struct{}
	once sync.Once
}

func (g *gatedScripted) Audit(target string) (core.Report, error) {
	first := false
	g.once.Do(func() { first = true })
	if first {
		<-g.gate
	}
	return g.scriptedAuditor.Audit(target)
}

// TestRoundChasesCoalescedStaleJob: when the round's submission coalesces
// onto an analysis that started before the round (an interactive audit in
// flight across the churn boundary), the monitor chases it with a fresh
// follow-up so the recorded point reflects the round's platform state.
func TestRoundChasesCoalescedStaleJob(t *testing.T) {
	gated := &gatedScripted{
		scriptedAuditor: scriptedAuditor{name: "alpha", frames: []frame{
			{fakePct: 5, followers: 1000},  // the stale in-flight analysis
			{fakePct: 40, followers: 4000}, // post-churn state
		}},
		gate: make(chan struct{}),
	}
	clock := simclock.NewVirtualAtEpoch()
	svc, err := auditd.New(auditd.Config{
		Workers: 2,
		Clock:   clock,
		Tools: map[string]auditd.Factory{
			"alpha": func(int) (core.Auditor, error) { return gated, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	mon, err := New(Config{
		Service: svc,
		Clock:   clock,
		// The round's submissions are in; the blocked interactive job may
		// now finish with its pre-round observation.
		OnRound: func(string, []auditd.JobID) { close(gated.gate) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Close)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour, Rules: Rules{
		FakeThresholdPct: -1, SpikePct: -1, FollowRatePerDay: -1,
	}})

	// Interactive request starts (and blocks) before the round fires.
	interactive, err := svc.Submit(auditd.JobSpec{Target: "davc", Tools: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick the job up so the round genuinely
	// coalesces onto a *running* analysis.
	for i := 0; i < 1000; i++ {
		if snap, _ := svc.Get(interactive.ID); snap.State == auditd.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	mustTick(t, mon)
	series, _ := mon.Series("davc")
	points := series["alpha"]
	if len(points) != 1 {
		t.Fatalf("series has %d points, want 1", len(points))
	}
	if points[0].FakePct != 40 {
		t.Fatalf("round recorded the stale coalesced verdict (fake %.0f%%), want the chased fresh 40%%",
			points[0].FakePct)
	}
	// The interactive caller still got its own (pre-round) answer.
	done, err := svc.Await(context.Background(), interactive.ID)
	if err != nil || done.Results["alpha"].Report.FakePct != 5 {
		t.Fatalf("interactive job = %+v, %v", done, err)
	}
}

// TestWatchSurfacesAuditFailures: a watch whose audits fail (e.g. a target
// the backend doesn't know) reports the failure in its status instead of
// silently looking like a quiet target.
func TestWatchSurfacesAuditFailures(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", failFor: "ghost",
		frames: []frame{{fakePct: 5, followers: 1000}}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "ghost", Cadence: 24 * time.Hour})
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour})
	mustTick(t, mon)

	ghost, ok := mon.Status("ghost")
	if !ok || ghost.Rounds != 1 {
		t.Fatalf("ghost status = %+v, %v", ghost, ok)
	}
	if !strings.Contains(ghost.LastError, "not found") {
		t.Fatalf("ghost LastError = %q, want the resolution failure", ghost.LastError)
	}
	if healthy, _ := mon.Status("davc"); healthy.LastError != "" {
		t.Fatalf("healthy watch carries error %q", healthy.LastError)
	}
	// A later clean round clears the sticky error.
	alpha.mu.Lock()
	alpha.failFor = ""
	alpha.mu.Unlock()
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)
	if ghost, _ = mon.Status("ghost"); ghost.LastError != "" {
		t.Fatalf("error not cleared after clean round: %q", ghost.LastError)
	}
}

// TestWatchUpdatePreservesHistory: re-registering a watched target (e.g.
// tightening a rule over HTTP) keeps the accumulated series and schedule
// state instead of silently resetting them.
func TestWatchUpdatePreservesHistory(t *testing.T) {
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 5, followers: 1000},
		{fakePct: 6, followers: 1100},
		{fakePct: 30, followers: 5000},
	}}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour})
	mustTick(t, mon)
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)

	// Tighten the rules mid-watch.
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour,
		Rules: Rules{FakeThresholdPct: 15, SpikePct: 10, FollowRatePerDay: 1000}})

	series, _ := mon.Series("davc")
	if len(series["alpha"]) != 2 {
		t.Fatalf("spec update dropped the series: %d points, want 2", len(series["alpha"]))
	}
	st, _ := mon.Status("davc")
	if st.Rounds != 2 || st.Spec.Rules.FakeThresholdPct != 15 {
		t.Fatalf("status after update = %+v", st)
	}
	// The next round still alerts against the *preserved* baseline.
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)
	kinds := map[AlertKind]int{}
	for _, a := range mon.Alerts("davc") {
		kinds[a.Kind]++
	}
	if kinds[ThresholdAlert] != 1 || kinds[BurstAlert] != 1 {
		t.Fatalf("alerts after spec update = %+v, want threshold + burst from preserved history", kinds)
	}
}

func TestTickAfterCloseFails(t *testing.T) {
	mon, _, _ := harness(t, Config{}, &scriptedAuditor{name: "alpha", frames: []frame{{}}})
	mon.Close()
	if _, err := mon.Tick(context.Background()); err != ErrClosed {
		t.Fatalf("Tick after close = %v, want ErrClosed", err)
	}
	if err := mon.Watch(WatchSpec{Target: "davc"}); err != ErrClosed {
		t.Fatalf("Watch after close = %v, want ErrClosed", err)
	}
}

// TestRunLoopOnVirtualClock: the paced loop compresses virtual days into
// wall milliseconds, exactly the 27-days-in-milliseconds property the
// simclock was built for.
func TestRunLoopOnVirtualClock(t *testing.T) {
	frames := make([]frame, 30)
	for i := range frames {
		frames[i] = frame{fakePct: 5, followers: 1000}
	}
	alpha := &scriptedAuditor{name: "alpha", frames: frames}
	mon, _, clock := harness(t, Config{}, alpha)
	mustWatch(t, mon, WatchSpec{Target: "davc", Cadence: 24 * time.Hour, Rules: Rules{
		FakeThresholdPct: -1, SpikePct: -1, FollowRatePerDay: -1,
	}})

	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { done <- mon.Run(ctx, 0) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		series, _ := mon.Series("davc")
		if len(series["alpha"]) >= 27 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run did not complete 27 virtual days in 5s")
		}
		time.Sleep(time.Millisecond)
	}
	mon.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if elapsed := clock.Now().Sub(simclock.Epoch); elapsed < 26*24*time.Hour {
		t.Fatalf("virtual time advanced only %v", elapsed)
	}
}
