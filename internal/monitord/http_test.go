package monitord

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

func httpHarness(t *testing.T) (*Monitor, *httptest.Server, *simclock.Virtual) {
	t.Helper()
	alpha := &scriptedAuditor{name: "alpha", frames: []frame{
		{fakePct: 5, followers: 1000},
		{fakePct: 40, followers: 9000},
	}}
	mon, _, clock := harness(t, Config{}, alpha)
	srv := httptest.NewServer(NewHandler(mon))
	t.Cleanup(srv.Close)
	return mon, srv, clock
}

func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPWatchLifecycle(t *testing.T) {
	mon, srv, _ := httpHarness(t)

	resp, err := http.Post(srv.URL+"/v1/watch", "application/json",
		strings.NewReader(`{"target":"davc","cadence":"12h","rules":{"fake_threshold_pct":25}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/watch status = %d, want 201", resp.StatusCode)
	}
	var created WatchStatus
	decode(t, resp, &created)
	if created.Spec.Target != "davc" || created.Spec.Cadence != 12*time.Hour {
		t.Fatalf("created = %+v", created)
	}
	if created.Spec.Rules.FakeThresholdPct != 25 || created.Spec.Rules.SpikePct != 10 {
		t.Fatalf("rules = %+v, want explicit threshold + defaulted spike", created.Spec.Rules)
	}

	resp, err = http.Get(srv.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Watches []WatchStatus `json:"watches"`
	}
	decode(t, resp, &listed)
	if len(listed.Watches) != 1 {
		t.Fatalf("listed %d watches, want 1", len(listed.Watches))
	}

	if len(mon.Watches()) != 1 {
		t.Fatal("watch not registered on the monitor")
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/watch/davc", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if len(mon.Watches()) != 0 {
		t.Fatal("watch still registered after DELETE")
	}
}

func TestHTTPWatchRejectsBadSpecs(t *testing.T) {
	_, srv, _ := httpHarness(t)
	for _, body := range []string{
		`{`,
		`{"target":""}`,
		`{"target":"x","tools":["nosuch"]}`,
		`{"target":"x","cadence":"not-a-duration"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/watch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPSeriesAndAlerts(t *testing.T) {
	mon, srv, clock := httpHarness(t)
	if err := mon.Watch(WatchSpec{Target: "davc", Cadence: 24 * time.Hour,
		Rules: Rules{FakeThresholdPct: 20, SpikePct: 10, FollowRatePerDay: 1000}}); err != nil {
		t.Fatal(err)
	}
	mustTick(t, mon)
	clock.Advance(24 * time.Hour)
	mustTick(t, mon)

	resp, err := http.Get(srv.URL + "/v1/series/davc")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series status = %d", resp.StatusCode)
	}
	var series struct {
		Target string             `json:"target"`
		Series map[string][]Point `json:"series"`
	}
	decode(t, resp, &series)
	if len(series.Series["alpha"]) != 2 {
		t.Fatalf("series = %+v, want 2 alpha points", series.Series)
	}

	resp, err = http.Get(srv.URL + "/v1/series/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series status = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/alerts?target=davc")
	if err != nil {
		t.Fatal(err)
	}
	var alerts struct {
		Alerts []Alert `json:"alerts"`
	}
	decode(t, resp, &alerts)
	// 5% → 40% across one day: threshold crossing, spike, and burst.
	if len(alerts.Alerts) != 3 {
		t.Fatalf("alerts = %+v, want 3", alerts.Alerts)
	}
}
