package monitord

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"fakeproject/internal/metrics"
)

// Handler exposes a Monitor over an HTTP JSON API, designed to mount next
// to the auditd API on one server:
//
//	POST   /v1/watch             register a watch; body {"target","tools",
//	                             "cadence":"24h","rules":{...}}
//	GET    /v1/watch             list watches with schedule state.
//	DELETE /v1/watch/{target}    remove a watch.
//	GET    /v1/series/{target}   per-tool verdict time series.
//	GET    /v1/alerts            retained alerts (?target= filters).
type Handler struct {
	mon *Monitor
	mux *http.ServeMux
}

// NewHandler builds the HTTP API for mon.
func NewHandler(mon *Monitor) *Handler {
	h := &Handler{mon: mon, mux: http.NewServeMux()}
	for _, rt := range h.routes() {
		h.mux.HandleFunc(rt.pattern, rt.handler)
	}
	return h
}

// NewHandlerObserved is NewHandler with every route wrapped in the shared
// HTTP instrumentation (plane "monitor") and the monitor's scheduler and
// alert counters exported into reg.
func NewHandlerObserved(mon *Monitor, reg *metrics.Registry) *Handler {
	h := &Handler{mon: mon, mux: http.NewServeMux()}
	plane := metrics.NewHTTPPlane(reg, "monitor", mon.clock)
	for _, rt := range h.routes() {
		h.mux.Handle(rt.pattern, plane.WrapFunc(rt.endpoint, rt.handler))
	}
	mon.Observe(reg)
	return h
}

// handlerRoute binds one mux pattern to its metrics endpoint label.
type handlerRoute struct {
	pattern  string
	endpoint string
	handler  http.HandlerFunc
}

func (h *Handler) routes() []handlerRoute {
	return []handlerRoute{
		{"POST /v1/watch", "watch/create", h.watch},
		{"GET /v1/watch", "watch/list", h.list},
		{"DELETE /v1/watch/{target}", "watch/delete", h.unwatch},
		{"GET /v1/series/{target}", "series", h.series},
		{"GET /v1/alerts", "alerts", h.alerts},
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// watchRequest is WatchSpec with a human-friendly duration string, matching
// the ?wait= convention of the audit API.
type watchRequest struct {
	Target  string   `json:"target"`
	Tools   []string `json:"tools,omitempty"`
	Cadence string   `json:"cadence,omitempty"`
	Rules   Rules    `json:"rules"`
}

func (h *Handler) watch(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, errors.New("decoding watch spec: "+err.Error()))
		return
	}
	spec := WatchSpec{Target: req.Target, Tools: req.Tools, Rules: req.Rules}
	if req.Cadence != "" {
		d, err := time.ParseDuration(req.Cadence)
		if err != nil {
			h.fail(w, http.StatusBadRequest, errors.New("invalid cadence "+req.Cadence))
			return
		}
		spec.Cadence = d
	}
	err := h.mon.Watch(spec)
	switch {
	case errors.Is(err, ErrBadWatch):
		h.fail(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrClosed):
		h.fail(w, http.StatusServiceUnavailable, err)
	case err != nil:
		h.fail(w, http.StatusInternalServerError, err)
	default:
		if st, ok := h.mon.Status(spec.Target); ok {
			writeJSON(w, http.StatusCreated, st)
			return
		}
		// Registered but unwatched in between — report what was created.
		writeJSON(w, http.StatusCreated, WatchStatus{Spec: spec})
	}
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Watches []WatchStatus `json:"watches"`
	}{Watches: h.mon.Watches()})
}

func (h *Handler) unwatch(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	if err := h.mon.Unwatch(target); err != nil {
		h.fail(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Removed string `json:"removed"`
	}{Removed: target})
}

func (h *Handler) series(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	series, ok := h.mon.Series(target)
	if !ok {
		h.fail(w, http.StatusNotFound, errors.New("monitord: no series for "+target))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Target string             `json:"target"`
		Series map[string][]Point `json:"series"`
	}{Target: target, Series: series})
}

func (h *Handler) alerts(w http.ResponseWriter, r *http.Request) {
	target := strings.TrimSpace(r.URL.Query().Get("target"))
	writeJSON(w, http.StatusOK, struct {
		Alerts []Alert `json:"alerts"`
	}{Alerts: h.mon.Alerts(target)})
}
