// Package wal is the durability plane of the platform store: an append-only,
// CRC-framed, length-prefixed binary log of every store mutation, a
// group-commit writer that batches fsyncs, periodic compaction into the
// canonical v4 snapshot format, and crash recovery by snapshot load plus
// log-tail replay.
//
// A log directory holds three kinds of files:
//
//	wal-<startLSN>.log   segments: a 20-byte header (magic, format version,
//	                     the LSN of the segment's first record), then framed
//	                     records
//	snap-<LSN>.gob       store snapshots; <LSN> is the last record the
//	                     snapshot has folded in
//	snap.tmp             an in-flight compaction output (ignored, and
//	                     replaced, on the next compaction)
//
// Each record frame is: uint32 LE payload length, uint32 LE CRC-32C of the
// payload, payload. A record carries exactly one mutation — create, follow,
// unfollow, purge, tweet or set-friends — encoded with varints (record.go).
// LSNs number records 1, 2, ... across segment boundaries; segment wal-N
// holds records N, N+1, ... in order, so the file name alone places a
// segment in the history.
//
// Recovery (recover.go) loads the newest readable snapshot and replays every
// segment past it in LSN order, tolerating a torn tail — a partial or
// corrupt final frame, the signature of a crash mid-append. Under the
// "always" fsync policy every acknowledged op has been fsynced before its
// Sync returned, so the torn region is always unacknowledged territory and
// recovery provably restores the acknowledged prefix (the kill-during-churn
// test asserts exactly this against the difftest reference model).
//
// Compaction (Log.Compact) snapshots the store through
// twitter.WriteSnapshotWith, rotating to a fresh segment inside the store's
// snapshot lock window, so the snapshot and the segments after it partition
// the op history exactly; segments behind the snapshot are then deleted.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// Policy says when appended records are fsynced to stable storage.
type Policy uint8

const (
	// PolicyAlways fsyncs before acknowledging each mutation. Concurrent
	// mutations share one fsync (group commit), so the cost is amortised
	// across the batch, not paid per op. Survives process and machine
	// crashes with zero acknowledged-op loss.
	PolicyAlways Policy = iota + 1
	// PolicyInterval acknowledges immediately and fsyncs on a fixed cadence
	// (Config.SyncEvery). A machine crash can lose up to one interval of
	// acknowledged ops; a clean process exit loses nothing.
	PolicyInterval
	// PolicyOff never fsyncs while running (the final Close still does).
	// The OS flushes the page cache whenever it likes; fastest, weakest.
	PolicyOff
)

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval", "":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config configures Open.
type Config struct {
	// Dir is the log directory. Created if absent.
	Dir string
	// Policy is the fsync policy; zero means PolicyInterval.
	Policy Policy
	// SyncEvery is the fsync cadence under PolicyInterval (and the flush
	// cadence under PolicyOff); zero means 100ms.
	SyncEvery time.Duration
	// CompactEvery, when nonzero, compacts automatically once that many
	// records have accumulated past the newest snapshot. Zero disables
	// automatic compaction; Compact can still be called explicitly.
	CompactEvery uint64
	// SeedSnapshot, when set, imports an external snapshot file (a genpop
	// -out artifact) into Dir before recovery. Dir must hold no prior WAL
	// state: the import is for bootstrapping a durable deployment from a
	// prebuilt population, not for merging histories.
	SeedSnapshot string
	// Clock/Seed/StoreOpts configure the store exactly as for
	// twitter.NewStore when the directory starts empty; Clock (zero:
	// simclock.Real) also binds recovered stores.
	Clock     simclock.Clock
	Seed      uint64
	StoreOpts []twitter.Option
	// Metrics, when non-nil, receives the wal_* instruments at Open.
	Metrics *metrics.Registry
}

// Open recovers the store persisted in cfg.Dir (an empty or absent
// directory yields a fresh store), attaches a durable op log to it, and
// returns both plus what recovery did. Every mutation on the returned store
// is logged and — under the configured policy — fsynced before its call
// returns. Close the Log before process exit to seal the final segment.
func Open(cfg Config) (*twitter.Store, *Log, RecoveryStats, error) {
	if cfg.Dir == "" {
		return nil, nil, RecoveryStats{}, fmt.Errorf("wal: Config.Dir is required")
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyInterval
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 100 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, RecoveryStats{}, fmt.Errorf("wal: creating %s: %w", cfg.Dir, err)
	}
	if cfg.SeedSnapshot != "" {
		if err := importSeedSnapshot(cfg, clock); err != nil {
			return nil, nil, RecoveryStats{}, err
		}
	}
	store, stats, err := recoverDir(cfg.Dir, clock, cfg.Seed, cfg.StoreOpts)
	if err != nil {
		return nil, nil, RecoveryStats{}, err
	}
	w, err := openWriter(cfg.Dir, stats.LastLSN, cfg.Policy, cfg.SyncEvery)
	if err != nil {
		return nil, nil, RecoveryStats{}, err
	}
	l := &Log{
		dir:   cfg.Dir,
		w:     w,
		st:    store,
		stats: stats,
		done:  make(chan struct{}),
	}
	l.lastCompactLSN.Store(stats.SnapshotLSN)
	store.SetOpLog(l)
	if cfg.Metrics != nil {
		l.Observe(cfg.Metrics)
	}
	if cfg.CompactEvery > 0 {
		// A long recovered tail means the last run crashed (or never
		// compacted); fold it down right away so the next crash replays a
		// short tail, then keep watching.
		if stats.LastLSN-stats.SnapshotLSN >= cfg.CompactEvery {
			if err := l.Compact(); err != nil {
				l.Close()
				return nil, nil, RecoveryStats{}, err
			}
		}
		l.wg.Add(1)
		go l.autoCompact(cfg.CompactEvery)
	}
	return store, l, stats, nil
}

// importSeedSnapshot copies an external snapshot into an empty log dir as
// the LSN-0 base snapshot (re-encoded canonically, fsynced, atomically
// renamed) so the imported population is durable in-dir from the first
// boot, not only after the first compaction.
func importSeedSnapshot(cfg Config, clock simclock.Clock) error {
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", cfg.Dir, err)
	}
	for _, e := range entries {
		if isWALFile(e.Name()) {
			return fmt.Errorf("wal: %s already holds WAL state (%s); refusing to import seed snapshot %s over it",
				cfg.Dir, e.Name(), cfg.SeedSnapshot)
		}
	}
	st, err := twitter.LoadSnapshotFile(cfg.SeedSnapshot, clock, cfg.StoreOpts...)
	if err != nil {
		return err
	}
	tmp := filepath.Join(cfg.Dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: importing seed snapshot: %w", err)
	}
	err = st.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(cfg.Dir, snapshotName(0)))
	}
	if err == nil {
		err = syncDir(cfg.Dir)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: importing seed snapshot: %w", err)
	}
	return nil
}

// isWALFile reports whether name is a file recovery would consider.
func isWALFile(name string) bool {
	_, okSeg := parseSegmentName(name)
	_, okSnap := parseSnapshotName(name)
	return okSeg || okSnap
}
