package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/twitter"
)

// Log is the live durability log attached to a store: it implements
// twitter.OpLog (every mutation lands here from inside the store's critical
// sections), compacts the log into snapshots, and exports the wal_*
// metrics. Obtain one through Open; close it before process exit.
type Log struct {
	dir   string
	w     *writer
	st    *twitter.Store
	stats RecoveryStats // what boot-time recovery did, frozen

	// compactMu serialises compactions (explicit Compact calls racing the
	// auto-compactor).
	compactMu sync.Mutex
	// lastCompactLSN is the LSN folded into the newest snapshot.
	lastCompactLSN atomic.Uint64
	compactions    atomic.Uint64
	compactErrs    atomic.Uint64
	compactHist    metrics.Histogram

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// payloadPool recycles record-encoding buffers: one encode per store
// mutation, always released before the hook returns.
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (l *Log) log(encode func(b []byte) []byte) (uint64, error) {
	bp := payloadPool.Get().(*[]byte)
	buf := encode((*bp)[:0])
	lsn, err := l.w.append(buf)
	*bp = buf
	payloadPool.Put(bp)
	return lsn, err
}

// LogCreate implements twitter.OpLog.
func (l *Log) LogCreate(id twitter.UserID, p twitter.UserParams) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodeCreate(b, id, p) })
}

// LogFollow implements twitter.OpLog.
func (l *Log) LogFollow(target, follower twitter.UserID, at time.Time) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodeEdge(b, recFollow, target, follower, at) })
}

// LogUnfollow implements twitter.OpLog.
func (l *Log) LogUnfollow(target, follower twitter.UserID, at time.Time) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodeEdge(b, recUnfollow, target, follower, at) })
}

// LogPurge implements twitter.OpLog.
func (l *Log) LogPurge(target twitter.UserID, followers []twitter.UserID, at time.Time) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodePurge(b, target, followers, at) })
}

// LogTweet implements twitter.OpLog.
func (l *Log) LogTweet(tw twitter.Tweet) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodeTweet(b, tw) })
}

// LogSetFriends implements twitter.OpLog.
func (l *Log) LogSetFriends(id twitter.UserID, friends []twitter.UserID) (uint64, error) {
	return l.log(func(b []byte) []byte { return encodeSetFriends(b, id, friends) })
}

// Sync implements twitter.OpLog: it blocks until lsn is durable under the
// configured policy. The store calls it after releasing its locks.
func (l *Log) Sync(lsn uint64) error { return l.w.sync(lsn) }

// RecoveryStats returns what boot-time recovery did.
func (l *Log) RecoveryStats() RecoveryStats { return l.stats }

// LastLSN returns the newest appended LSN.
func (l *Log) LastLSN() uint64 { return l.w.records.Load() }

// Compact writes a snapshot of the store's current state and deletes the
// log behind it. The snapshot cut and the segment rotation happen inside
// the same store lock window (WriteSnapshotWith), so the new snapshot plus
// the segments after it hold exactly the full history; the write itself
// (the expensive part) runs concurrently with normal traffic, blocking
// only writers for the serialisation. The snapshot lands via tmp file,
// fsync, atomic rename, directory fsync.
func (l *Log) Compact() error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	start := time.Now()
	err := l.compact()
	if err != nil {
		l.compactErrs.Add(1)
		return err
	}
	l.compactions.Add(1)
	l.compactHist.Record(time.Since(start))
	return nil
}

func (l *Log) compact() error {
	tmp := filepath.Join(l.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compacting: %w", err)
	}
	var cut uint64
	err = l.st.WriteSnapshotWith(f, func() error {
		var rerr error
		cut, rerr = l.w.rotate()
		return rerr
	})
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName(cut))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: compacting: %w", err)
	}
	l.lastCompactLSN.Store(cut)
	return l.prune(cut)
}

// prune deletes snapshots older than cut and segments wholly behind it.
// Rotation put a segment boundary exactly at cut, so any segment starting
// at or before cut ends at or before it too.
func (l *Log) prune(cut uint64) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: pruning: %w", err)
	}
	var firstErr error
	for _, e := range entries {
		stale := false
		if lsn, ok := parseSnapshotName(e.Name()); ok {
			stale = lsn < cut
		} else if start, ok := parseSegmentName(e.Name()); ok {
			stale = start <= cut
		}
		if !stale {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, e.Name())); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: pruning: %w", err)
		}
	}
	return firstErr
}

// autoCompact watches the tail length and compacts once it exceeds every.
func (l *Log) autoCompact(every uint64) {
	defer l.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			if l.w.records.Load()-l.lastCompactLSN.Load() >= every {
				// Failures are counted (wal_compaction_errors_total) and
				// retried next tick; a broken writer also fails appends,
				// which is where operators see it first.
				_ = l.Compact()
			}
		}
	}
}

// Close stops the auto-compactor and seals the current segment (flush +
// fsync under every policy). The store keeps serving reads afterwards;
// further mutations fail.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.wg.Wait()
		l.closeErr = l.w.close()
	})
	return l.closeErr
}

// Observe registers the wal_* instruments on reg.
func (l *Log) Observe(reg *metrics.Registry) {
	reg.CounterFunc("wal_records_total",
		"Records in the write-ahead log's history (the newest LSN).",
		func() float64 { return float64(l.w.records.Load()) })
	reg.CounterFunc("wal_bytes_total",
		"Framed bytes appended to the log by this process.",
		func() float64 { return float64(l.w.bytes.Load()) })
	reg.CounterFunc("wal_fsyncs_total",
		"Data fsyncs issued (group commits, rotations).",
		func() float64 { return float64(l.w.fsyncs.Load()) })
	reg.RegisterHistogram("wal_fsync_seconds",
		"Latency of log fsyncs; under -fsync always each one acknowledges a whole group-commit batch.",
		&l.w.fsyncHist)
	reg.CounterFunc("wal_compactions_total",
		"Completed log compactions (snapshot written, log truncated behind it).",
		func() float64 { return float64(l.compactions.Load()) })
	reg.CounterFunc("wal_compaction_errors_total",
		"Failed compaction attempts.",
		func() float64 { return float64(l.compactErrs.Load()) })
	reg.RegisterHistogram("wal_compaction_seconds",
		"Wall time of compactions: snapshot serialisation, fsync, rename, pruning.",
		&l.compactHist)
	reg.GaugeFunc("wal_tail_records",
		"Records appended since the newest snapshot — the replay debt a crash right now would incur.",
		func() float64 { return float64(l.w.records.Load() - l.lastCompactLSN.Load()) })
	reg.GaugeFunc("wal_log_bytes",
		"Bytes across live log segments on disk.",
		func() float64 { return dirBytes(l.dir, parseSegmentName) })
	reg.GaugeFunc("wal_snapshot_bytes",
		"Bytes across snapshots on disk (normally exactly one).",
		func() float64 { return dirBytes(l.dir, parseSnapshotName) })
	reg.GaugeFunc("wal_recovery_records",
		"Records replayed by this process's boot-time recovery.",
		func() float64 { return float64(l.stats.RecordsReplayed) })
	reg.GaugeFunc("wal_recovery_seconds",
		"Wall time of this process's boot-time recovery.",
		func() float64 { return l.stats.Elapsed.Seconds() })
	reg.GaugeFunc("wal_recovery_torn_tail",
		"1 if boot-time recovery abandoned a torn final record (crash signature), else 0.",
		func() float64 {
			if l.stats.TornTail {
				return 1
			}
			return 0
		})
}

// dirBytes sums the sizes of directory entries whose names parse.
func dirBytes(dir string, parse func(string) (uint64, bool)) float64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total float64
	for _, e := range entries {
		if _, ok := parse(e.Name()); !ok {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += float64(info.Size())
		}
	}
	return total
}
