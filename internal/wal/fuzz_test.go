package wal

import (
	"bufio"
	"bytes"
	"testing"

	"fakeproject/internal/twitter"
)

// FuzzWALDecode throws arbitrary bytes at the whole read path — segment
// header, frame reader, record decoder — asserting it never panics and
// that malformed input is confined to a clean torn-tail stop or an error,
// never a record silently invented. Seeds cover a valid segment plus every
// record kind and the interesting corruptions (truncations, bit flips,
// huge claimed lengths).
func FuzzWALDecode(f *testing.F) {
	payloads := sampleRecords()
	full := buildSegment(1, payloads)
	f.Add(full)
	f.Add(full[:headerLen])
	f.Add(full[:headerLen+3])          // partial frame
	f.Add(full[:len(full)-1])          // truncated final payload
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all, but longer than a header"))
	flipped := append([]byte(nil), full...)
	flipped[headerLen+frameLen+2] ^= 0x10 // payload bit flip → CRC mismatch
	f.Add(flipped)
	badlen := append([]byte(nil), full...)
	badlen[headerLen] = 0xFF // absurd claimed length
	badlen[headerLen+1] = 0xFF
	badlen[headerLen+2] = 0xFF
	f.Add(badlen)
	for _, p := range payloads {
		f.Add(buildSegment(7, [][]byte{p}))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		start, torn, err := parseSegmentHeader(br)
		if err != nil {
			return // rejected header: fine, as long as we got here without panicking
		}
		if torn {
			if len(data) >= headerLen {
				t.Fatalf("full %d-byte header reported torn", len(data))
			}
			return
		}
		_ = start
		var decoded int
		n, _, err := readRecords(br, func(rec record) error {
			decoded++
			// Anything that survived CRC + decode must re-encode; this keeps
			// the fuzzer honest about decoder laxity (a payload with two
			// different valid interpretations would show up here).
			switch rec.kind {
			case recCreate:
				encodeCreate(nil, rec.id, rec.params)
			case recFollow, recUnfollow:
				encodeEdge(nil, rec.kind, rec.target, rec.follower, rec.at)
			case recPurge:
				encodePurge(nil, rec.target, rec.batch, rec.at)
			case recTweet:
				encodeTweet(nil, rec.tweet)
			case recSetFriends:
				encodeSetFriends(nil, rec.id, rec.batch)
			default:
				return nil
			}
			return nil
		})
		if err == nil && uint64(decoded) != n {
			t.Fatalf("callback ran %d times for %d records", decoded, n)
		}
	})
}

// FuzzRecordDecode hits decodeRecord directly with raw payloads (no frame,
// no CRC gate), the harshest surface: every byte of the input is
// attacker-controlled.
func FuzzRecordDecode(f *testing.F) {
	for _, p := range sampleRecords() {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{recPurge, 2, 4, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		if rec.kind < recCreate || rec.kind > recSetFriends {
			t.Fatalf("decode accepted kind %d", rec.kind)
		}
		// Bounded allocation: a decoded batch can never exceed one ID per
		// remaining payload byte.
		if len(rec.batch) > len(payload) {
			t.Fatalf("batch of %d IDs from %d payload bytes", len(rec.batch), len(payload))
		}
		_ = twitter.UserID(rec.id)
	})
}
