package wal_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitter/difftest"
	"fakeproject/internal/wal"
)

// newestSegment returns the path of the live (highest-start) WAL segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no WAL segments in dir")
	}
	sort.Strings(names) // fixed-width hex: lexical order == numeric order
	return filepath.Join(dir, names[len(names)-1])
}

// appendGarbage simulates the on-disk shape of a SIGKILL mid-append: a frame
// header promising more payload than ever hit the disk, followed by noise.
func appendGarbage(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], 500) // claims 500 payload bytes
	binary.LittleEndian.PutUint32(frame[4:], 0xdeadbeef)
	torn := append(frame[:], make([]byte, 50)...) // only 50 arrive
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
}

// TestKillDuringChurnRecovery is the durability acceptance test: drive a
// generated op stream against a WAL-backed store and the difftest reference
// model in lockstep, hard-stop the store at an arbitrary op boundary (under
// -fsync always a clean Close plus a torn tail appended to the live segment
// is byte-equivalent to SIGKILL mid-append: every acknowledged record is
// already fsynced, the tear is past all of them), recover, and require the
// recovered state to equal the acknowledged prefix exactly — including
// follower-page cursors captured before the kill.
func TestKillDuringChurnRecovery(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			store, wlog, _, err := wal.Open(wal.Config{
				Dir:    dir,
				Policy: wal.PolicyAlways,
				Clock:  simclock.NewVirtualAtEpoch(),
				Seed:   42,
			})
			if err != nil {
				t.Fatal(err)
			}

			// OpSnapshot asks for a serialise/deserialise roundtrip, which a
			// WAL-backed store under test deliberately refuses (WrapStore);
			// everything else in the vocabulary runs verbatim.
			var ops []difftest.Op
			for _, op := range difftest.Generate(seed, 1500) {
				if op.Kind != difftest.OpSnapshot {
					ops = append(ops, op)
				}
			}
			rng := rand.New(rand.NewSource(int64(seed)))
			crashAt := len(ops)/2 + rng.Intn(len(ops)/2)

			refClock := simclock.NewVirtualAtEpoch()
			ref := difftest.NewRef(refClock)
			sys := difftest.WrapStore(store)
			explicit := make(map[twitter.UserID]string)
			var names []string
			var tweetUsers []twitter.UserID
			tweeted := make(map[twitter.UserID]bool)
			for i, op := range ops[:crashAt] {
				ra := difftest.Apply(sys, op)
				rb := difftest.Apply(ref, op)
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("op %d (%s) diverged before the kill:\n  store: %+v\n  ref:   %+v", i, op, ra, rb)
				}
				if op.Kind == difftest.OpCreate && ra.Err == "" && op.Params.ScreenName != "" {
					explicit[ra.ID] = op.Params.ScreenName
					names = append(names, op.Params.ScreenName)
				}
				if op.Kind == difftest.OpTweet && ra.Err == "" && !tweeted[op.Target] {
					tweeted[op.Target] = true
					tweetUsers = append(tweetUsers, op.Target)
				}
			}

			// Capture a live pagination cursor on the busiest target: it must
			// still resume correctly on the recovered store.
			var hot twitter.UserID
			hotCount := 0
			for id := twitter.UserID(1); int(id) <= store.UserCount(); id++ {
				if fc, err := store.FollowerCount(id); err == nil && fc > hotCount {
					hot, hotCount = id, fc
				}
			}
			var cursor uint64
			if hotCount > 3 {
				page, err := store.FollowersPage(hot, 0, 3)
				if err != nil {
					t.Fatal(err)
				}
				cursor = page.NextSeq
			}

			ackLSN := wlog.LastLSN()
			if err := wlog.Close(); err != nil {
				t.Fatal(err)
			}
			appendGarbage(t, newestSegment(t, dir))

			store2, wlog2, stats, err := wal.Open(wal.Config{
				Dir:    dir,
				Policy: wal.PolicyAlways,
				Clock:  simclock.NewVirtualAtEpoch(),
				Seed:   42,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer wlog2.Close()
			if !stats.TornTail {
				t.Error("recovery did not report the torn tail")
			}
			if stats.LastLSN != ackLSN {
				t.Errorf("recovered through record %d, acknowledged prefix ends at %d", stats.LastLSN, ackLSN)
			}

			ocfg := difftest.ObserveConfig{PageLimit: 7, TweetUsers: tweetUsers, Names: names}
			got, err := difftest.Observe(difftest.WrapStore(store2), ocfg)
			if err != nil {
				t.Fatalf("observing recovered store: %v", err)
			}
			want, err := difftest.Observe(ref, ocfg)
			if err != nil {
				t.Fatalf("observing reference: %v", err)
			}
			difftest.Normalize(&got, explicit)
			difftest.Normalize(&want, explicit)
			if d := difftest.DiffObservations(got, want); d != "" {
				t.Fatalf("recovered state diverges from acknowledged prefix: %s", d)
			}

			if cursor != 0 {
				gp, err := store2.FollowersPage(hot, cursor, 3)
				if err != nil {
					t.Fatalf("resuming pre-kill cursor on recovered store: %v", err)
				}
				wp, err := ref.FollowersPage(hot, cursor, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gp, wp) {
					t.Fatalf("pre-kill cursor resumed differently:\n  store: %+v\n  ref:   %+v", gp, wp)
				}
			}

			// The recovered store is live: the unacknowledged suffix of the
			// stream must replay on top in continued lockstep with the ref.
			// Recovery advanced the store's virtual clock past every replayed
			// event; mirror that on the reference so zero-CreatedAt creates
			// resolve to the same instant on both sides.
			if now := store2.Now(); now.After(refClock.Now()) {
				refClock.SetNow(now)
			}
			sys2 := difftest.WrapStore(store2)
			for i, op := range ops[crashAt:] {
				ra := difftest.Apply(sys2, op)
				rb := difftest.Apply(ref, op)
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("op %d (%s) diverged after recovery:\n  store: %+v\n  ref:   %+v", crashAt+i, op, ra, rb)
				}
				if op.Kind == difftest.OpCreate && ra.Err == "" && op.Params.ScreenName != "" {
					explicit[ra.ID] = op.Params.ScreenName
					names = append(names, op.Params.ScreenName)
				}
				if op.Kind == difftest.OpTweet && ra.Err == "" && !tweeted[op.Target] {
					tweeted[op.Target] = true
					tweetUsers = append(tweetUsers, op.Target)
				}
			}
			ocfg = difftest.ObserveConfig{PageLimit: 7, TweetUsers: tweetUsers, Names: names}
			got, err = difftest.Observe(sys2, ocfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err = difftest.Observe(ref, ocfg)
			if err != nil {
				t.Fatal(err)
			}
			difftest.Normalize(&got, explicit)
			difftest.Normalize(&want, explicit)
			if d := difftest.DiffObservations(got, want); d != "" {
				t.Fatalf("post-recovery stream diverges: %s", d)
			}
		})
	}
}
