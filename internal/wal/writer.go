package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fakeproject/internal/metrics"
)

// Segment framing.
var walMagic = [8]byte{'F', 'P', 'W', 'A', 'L', '0', '0', '1'}

const (
	// formatVersion is the record-format version stamped into every segment
	// header. Bump it when the payload encoding changes incompatibly.
	formatVersion = 1
	// headerLen is magic + uint32 format version + uint64 start LSN.
	headerLen = 8 + 4 + 8
	// frameLen is the per-record prefix: uint32 payload length + uint32 CRC.
	frameLen = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var errWriterClosed = errors.New("wal: writer closed")

func segmentName(start uint64) string { return fmt.Sprintf("wal-%016x.log", start) }
func snapshotName(lsn uint64) string  { return fmt.Sprintf("snap-%016x.gob", lsn) }

func parseSegmentName(name string) (start uint64, ok bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &n); err != nil || segmentName(n) != name {
		return 0, false
	}
	return n, true
}

func parseSnapshotName(name string) (lsn uint64, ok bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.gob", &n); err != nil || snapshotName(n) != name {
		return 0, false
	}
	return n, true
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writer is the append side of the log: appends go into a buffered writer
// under a short mutex; making them durable is the committer goroutine's
// job, off the append path, so a slow fsync stalls only the ops waiting on
// it (group commit) and never blocks the buffer from accepting more.
//
// Lock order: store locks (createMu, shard mutexes) are always taken before
// writer.mu — appends arrive from inside store critical sections — and
// nothing under writer.mu ever calls into the store, so the order is
// acyclic. sync() is called only after store locks are released.
type writer struct {
	dir       string
	policy    Policy
	syncEvery time.Duration

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when durable advances or err sets
	f        *os.File
	bw       *bufio.Writer
	gen      uint64 // bumped by rotate; a committer fsync that straddles a rotation detects it here
	appended uint64 // LSN of the newest buffered record
	durable  uint64 // LSN through which records are flushed (and fsynced, except under PolicyOff)
	err      error  // sticky fatal error
	closed   bool

	wake chan struct{} // nudges the committer (PolicyAlways)
	done chan struct{}
	wg   sync.WaitGroup

	// Monotone mirrors readable without mu, for metrics.
	records atomic.Uint64 // == appended
	bytes   atomic.Uint64 // framed bytes appended since process start
	fsyncs  atomic.Uint64
	// fsyncHist times every data fsync (group commits, rotations, close).
	fsyncHist metrics.Histogram
}

// createSegment creates the segment whose first record will be start,
// writes its header durably, and syncs the directory. A pre-existing file
// of the same name can only be a previous boot's segment that recovery
// consumed zero records from (otherwise the next segment would start
// higher), so replacing it discards nothing acknowledged.
func createSegment(dir string, start uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(start))
	if _, err := os.Stat(path); err == nil {
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("wal: replacing empty segment: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], start)
	if _, err := f.Write(hdr[:]); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return f, nil
}

// openWriter starts appending after lastLSN, in a fresh segment.
func openWriter(dir string, lastLSN uint64, policy Policy, syncEvery time.Duration) (*writer, error) {
	f, err := createSegment(dir, lastLSN+1)
	if err != nil {
		return nil, err
	}
	w := &writer{
		dir:       dir,
		policy:    policy,
		syncEvery: syncEvery,
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<16),
		appended:  lastLSN,
		durable:   lastLSN,
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	w.records.Store(lastLSN)
	w.wg.Add(1)
	if policy == PolicyAlways {
		go w.commitLoop()
	} else {
		go w.tickLoop()
	}
	return w, nil
}

// append frames payload into the buffer and returns its LSN. The payload is
// copied before return, so callers may reuse the buffer.
func (w *writer) append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxPayload {
		return 0, fmt.Errorf("wal: record payload of %d bytes out of range", len(payload))
	}
	var frame [frameLen]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.closed {
		w.mu.Unlock()
		return 0, errWriterClosed
	}
	if _, err := w.bw.Write(frame[:]); err != nil {
		w.failLocked(err)
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.failLocked(err)
		w.mu.Unlock()
		return 0, err
	}
	w.appended++
	lsn := w.appended
	w.records.Store(lsn)
	w.bytes.Add(uint64(len(payload) + frameLen))
	w.mu.Unlock()

	if w.policy == PolicyAlways {
		select {
		case w.wake <- struct{}{}:
		default: // a commit pass is already pending; it will pick this record up
		}
	}
	return lsn, nil
}

// sync blocks until lsn is durable. Under PolicyInterval and PolicyOff
// the ack contract is "buffered", so sync returns immediately.
func (w *writer) sync(lsn uint64) error {
	if w.policy != PolicyAlways {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.durable < lsn {
		return errWriterClosed
	}
	return nil
}

// failLocked records a fatal writer error and wakes every waiter. Caller
// holds w.mu.
func (w *writer) failLocked(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("wal: writer failed: %w", err)
	}
	w.cond.Broadcast()
}

func (w *writer) commitLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case <-w.wake:
			w.flush(true)
		}
	}
}

func (w *writer) tickLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.flush(w.policy == PolicyInterval)
		}
	}
}

// flush pushes everything buffered to the OS and, when fsync is set, to
// stable storage. The fsync itself runs outside w.mu — this is the group
// commit: appends keep landing in the buffer while the disk syncs, and the
// next flush commits them all in one sync. A rotation that lands mid-fsync
// is detected by the generation counter; the rotation fsynced the sealed
// segment itself, so the stale result (often "file already closed") is
// discarded.
func (w *writer) flush(fsync bool) {
	w.mu.Lock()
	if w.err != nil || w.closed {
		w.mu.Unlock()
		return
	}
	target := w.appended
	if target == w.durable {
		w.mu.Unlock()
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.failLocked(err)
		w.mu.Unlock()
		return
	}
	if !fsync {
		w.durable = target
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	f, gen := w.f, w.gen
	w.mu.Unlock()

	start := time.Now()
	err := f.Sync()
	elapsed := time.Since(start)

	w.mu.Lock()
	switch {
	case gen != w.gen:
		// Rotated while syncing; the rotation already made target durable.
	case err != nil:
		w.failLocked(err)
	default:
		if target > w.durable {
			w.durable = target
		}
		w.fsyncs.Add(1)
		w.fsyncHist.Record(elapsed)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// rotate seals the current segment — flush, fsync, close — and opens a new
// one whose first record will be the next LSN, returning the LSN of the
// last sealed record. Compaction calls it with the whole store locked
// (WriteSnapshotWith's cut hook), so no append can interleave with the
// switch; appends blocked on w.mu land in the new segment.
func (w *writer) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errWriterClosed
	}
	if err := w.bw.Flush(); err != nil {
		w.failLocked(err)
		return 0, err
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.failLocked(err)
		return 0, err
	}
	w.fsyncs.Add(1)
	w.fsyncHist.Record(time.Since(start))
	if err := w.f.Close(); err != nil {
		w.failLocked(err)
		return 0, err
	}
	cut := w.appended
	f, err := createSegment(w.dir, cut+1)
	if err != nil {
		w.failLocked(err)
		return 0, err
	}
	w.f = f
	w.bw.Reset(f)
	w.gen++
	if cut > w.durable {
		w.durable = cut
	}
	w.cond.Broadcast()
	return cut, nil
}

// close stops the committer, flushes and fsyncs the tail under every
// policy (a clean shutdown is always durable), and closes the segment.
func (w *writer) close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		if err := w.bw.Flush(); err != nil {
			w.err = fmt.Errorf("wal: closing writer: %w", err)
		}
	}
	if w.err == nil {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: closing writer: %w", err)
		}
	}
	if cerr := w.f.Close(); cerr != nil && w.err == nil {
		w.err = fmt.Errorf("wal: closing writer: %w", cerr)
	}
	if w.err == nil {
		w.durable = w.appended
	}
	w.cond.Broadcast()
	return w.err
}
