package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// RecoveryStats reports what Open's recovery pass did.
type RecoveryStats struct {
	// SnapshotPath is the snapshot replay started from ("" = none; replay
	// ran from LSN 1, or the directory was empty).
	SnapshotPath string
	// SnapshotLSN is the LSN the snapshot had folded in.
	SnapshotLSN uint64
	// LastLSN is the newest LSN restored; appends resume after it.
	LastLSN uint64
	// SegmentsScanned counts log segments read past the snapshot.
	SegmentsScanned int
	// RecordsReplayed counts individual ops re-applied.
	RecordsReplayed uint64
	// TornTail reports whether the final segment ended in a partial or
	// corrupt frame — the signature of a crash mid-append. The tear is
	// past the last durable record and is abandoned, not an error.
	TornTail bool
	// Users is the recovered account count.
	Users int
	// Elapsed is the wall time of the whole recovery pass.
	Elapsed time.Duration
}

// parseSegmentHeader validates a segment's magic/version and returns its
// start LSN. A file too short to hold a header is reported as torn (a
// crash can land between createSegment's open and its header write).
func parseSegmentHeader(br *bufio.Reader) (start uint64, torn bool, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, true, nil
	}
	if [8]byte(hdr[:8]) != walMagic {
		return 0, false, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return 0, false, fmt.Errorf("record format v%d, this build reads v%d", v, formatVersion)
	}
	return binary.LittleEndian.Uint64(hdr[12:]), false, nil
}

// readRecords streams framed records from br, calling fn for each. It
// returns how many records were consumed and whether the stream ended in a
// torn tail — a partial frame, an implausible length, or a CRC mismatch —
// rather than a clean EOF. err is non-nil only for fn failures or for a
// fully framed, checksummed record that does not decode (real corruption
// or format skew, which must stop recovery loudly, unlike a tear).
func readRecords(br *bufio.Reader, fn func(rec record) error) (n uint64, torn bool, err error) {
	var frame [frameLen]byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return n, err != io.EOF, nil
		}
		plen := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if plen == 0 || plen > maxPayload {
			return n, true, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return n, true, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return n, true, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return n, false, fmt.Errorf("record %d of segment: %w", n+1, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return n, false, err
			}
		}
		n++
	}
}

type segFile struct {
	start uint64
	path  string
}

// recoverDir rebuilds the store from dir: newest loadable snapshot, then
// every segment past it in LSN order. Segments must chain — each one's
// start LSN is the previous one's end plus one — except that a segment
// ending in a torn tail may be followed by a segment resuming exactly
// after its last *valid* record (the sequel of a crash-then-restart whose
// tear was abandoned by the restarted writer). A gap or overlap in the
// chain is corruption and fails recovery.
func recoverDir(dir string, clock simclock.Clock, seed uint64, opts []twitter.Option) (*twitter.Store, RecoveryStats, error) {
	begin := time.Now()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, RecoveryStats{}, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var snaps []segFile
	var segs []segFile
	for _, e := range entries {
		if lsn, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, segFile{lsn, filepath.Join(dir, e.Name())})
		}
		if start, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segFile{start, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].start > snaps[j].start }) // newest first
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	stats := RecoveryStats{}
	var store *twitter.Store
	var loadErrs []error
	for _, sn := range snaps {
		st, err := twitter.LoadSnapshotFile(sn.path, clock, opts...)
		if err != nil {
			// An unreadable snapshot (crash mid-rename never happens — the
			// tmp+rename dance is atomic — but disks corrupt) falls back to
			// the next older one; the log behind it still covers the delta.
			loadErrs = append(loadErrs, err)
			continue
		}
		store, stats.SnapshotPath, stats.SnapshotLSN = st, sn.path, sn.start
		break
	}
	if store == nil {
		// No loadable snapshot: only a log that reaches back to LSN 1 can
		// rebuild from scratch.
		if len(snaps) > 0 && (len(segs) == 0 || segs[0].start > 1) {
			return nil, RecoveryStats{}, fmt.Errorf("wal: no loadable snapshot in %s and the log does not reach back to record 1: %v", dir, loadErrs)
		}
		store = twitter.NewStore(clock, seed, opts...)
	}

	lsn := stats.SnapshotLSN
	stats.LastLSN = lsn
	var maxAt time.Time
	apply := func(rec record) error {
		if err := rec.apply(store); err != nil {
			return err
		}
		if at := rec.eventTime(); at.After(maxAt) {
			maxAt = at
		}
		return nil
	}
	for _, seg := range segs {
		if seg.start <= lsn {
			// Entirely behind the snapshot (compaction prunes these, but a
			// crash between rename and prune leaves them) — skip.
			continue
		}
		if seg.start != lsn+1 {
			return nil, RecoveryStats{}, fmt.Errorf("wal: log gap: %s starts at record %d but replay is at %d", seg.path, seg.start, lsn)
		}
		n, torn, err := replaySegment(seg.path, seg.start, apply)
		if err != nil {
			return nil, RecoveryStats{}, err
		}
		lsn += n
		stats.SegmentsScanned++
		stats.RecordsReplayed += n
		stats.TornTail = torn
		// A tear mid-chain is fine exactly when the next segment resumes at
		// lsn+1 — the chain check above enforces it on the next iteration.
	}
	stats.LastLSN = lsn
	stats.Users = store.UserCount()
	// Everything replayed happened at simulated instants up to maxAt; a
	// virtual clock must resume at or past it for further mutations to stay
	// monotonic (mirrors ReadSnapshot's ClockUnix handling).
	if v, ok := clock.(*simclock.Virtual); ok && maxAt.After(v.Now()) {
		v.SetNow(maxAt)
	}
	stats.Elapsed = time.Since(begin)
	return store, stats, nil
}

// replaySegment reads one segment, validating its header against the name
// it carries, and applies every record.
func replaySegment(path string, wantStart uint64, fn func(rec record) error) (n uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	start, torn, err := parseSegmentHeader(br)
	if err != nil {
		return 0, false, fmt.Errorf("wal: segment %s: %w", path, err)
	}
	if torn {
		// Headerless stub: the crash hit between file creation and the
		// header write. Nothing in it, nothing lost.
		return 0, true, nil
	}
	if start != wantStart {
		return 0, false, fmt.Errorf("wal: segment %s claims start record %d in its header", path, start)
	}
	n, torn, err = readRecords(br, fn)
	if err != nil {
		return n, false, fmt.Errorf("wal: segment %s: %w", path, err)
	}
	return n, torn, nil
}
