package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"fakeproject/internal/twitter"
)

// Record payloads. One payload is one mutation: a kind byte followed by the
// op's fields as uvarints/varints, strings and ID lists length-prefixed,
// behaviour ratios as fixed 8-byte float bits, booleans packed into one
// flag byte. Times travel as unix seconds — the store itself quantises to
// seconds everywhere, so nothing finer exists to lose. The encoding is
// hand-rolled rather than gob because a record is written on every store
// mutation: no reflection, no type preamble, one small buffer per op.

// Record kinds. Start at 1 so a zero byte (a zero-filled torn tail) is
// never a valid record.
const (
	recCreate byte = iota + 1
	recFollow
	recUnfollow
	recPurge
	recTweet
	recSetFriends
)

// maxPayload bounds a single record payload (16 MiB). Frames claiming more
// are torn or garbage, never legitimate: the largest real record is a purge
// batch, and the population driver purges thousands, not millions, per op.
const maxPayload = 1 << 24

// record is one decoded mutation.
type record struct {
	kind     byte
	id       twitter.UserID // create subject / set-friends subject
	target   twitter.UserID // follow / unfollow / purge target
	follower twitter.UserID // follow / unfollow
	batch    []twitter.UserID
	at       time.Time
	params   twitter.UserParams // create only
	tweet    twitter.Tweet      // tweet only
}

// eventTime returns the simulated instant the record carries, used to
// advance a virtual clock past everything replay reinstated.
func (r record) eventTime() time.Time {
	switch r.kind {
	case recCreate:
		return r.params.CreatedAt
	case recTweet:
		return r.tweet.CreatedAt
	default:
		return r.at
	}
}

// apply re-executes the mutation against st. The store must have no OpLog
// attached (recovery runs before the writer opens), so nothing re-logs.
func (r record) apply(st *twitter.Store) error {
	switch r.kind {
	case recCreate:
		id, err := st.CreateUser(r.params)
		if err != nil {
			return err
		}
		if id != r.id {
			return fmt.Errorf("create replayed as id %d, logged as %d", id, r.id)
		}
		return nil
	case recFollow:
		return st.AddFollower(r.target, r.follower, r.at)
	case recUnfollow:
		_, err := st.Unfollow(r.target, r.follower, r.at)
		return err
	case recPurge:
		_, err := st.RemoveFollowers(r.target, r.batch, r.at)
		return err
	case recTweet:
		return st.RestoreTweet(r.tweet)
	case recSetFriends:
		return st.SetFriends(r.id, r.batch)
	}
	return fmt.Errorf("unknown record kind %d", r.kind)
}

// unix0 maps a time to unix seconds with zero preserved: the store uses the
// zero Time as its "never" sentinel (LastTweet) and second 0 for everything
// else, so the one overlap (an instant exactly at the epoch) already
// conflates inside the store itself.
func unix0(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func time0(sec int64) time.Time {
	if sec == 0 {
		return time.Time{}
	}
	return time.Unix(sec, 0).UTC()
}

// Create-record profile booleans, packed into one byte.
const (
	encBio = 1 << iota
	encLocation
	encURL
	encDefaultImage
	encProtected
	encVerified
)

// Tweet-record booleans.
const (
	encRetweet = 1 << iota
	encLink
	encReply
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendIDs(b []byte, ids []twitter.UserID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
	}
	return b
}

func encodeCreate(b []byte, id twitter.UserID, p twitter.UserParams) []byte {
	b = append(b, recCreate)
	b = binary.AppendVarint(b, int64(id))
	b = appendString(b, p.ScreenName)
	// p.Name is deliberately not persisted: the store ignores it (display
	// names are synthesised from the per-user seed).
	b = binary.AppendVarint(b, p.CreatedAt.Unix()) // resolved by the store before logging
	b = binary.AppendVarint(b, unix0(p.LastTweet))
	b = binary.AppendVarint(b, int64(p.Statuses))
	b = binary.AppendVarint(b, int64(p.Friends))
	b = binary.AppendVarint(b, int64(p.Followers))
	var flags byte
	for i, set := range [...]bool{p.Bio, p.Location, p.URL, p.DefaultProfileImage, p.Protected, p.Verified} {
		if set {
			flags |= 1 << i
		}
	}
	b = append(b, flags, byte(p.Class))
	for _, f := range [...]float64{p.Behavior.RetweetRatio, p.Behavior.LinkRatio, p.Behavior.SpamRatio, p.Behavior.DuplicateRatio} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

func encodeEdge(b []byte, kind byte, target, follower twitter.UserID, at time.Time) []byte {
	b = append(b, kind)
	b = binary.AppendVarint(b, int64(target))
	b = binary.AppendVarint(b, int64(follower))
	b = binary.AppendVarint(b, at.Unix())
	return b
}

func encodePurge(b []byte, target twitter.UserID, followers []twitter.UserID, at time.Time) []byte {
	b = append(b, recPurge)
	b = binary.AppendVarint(b, int64(target))
	b = binary.AppendVarint(b, at.Unix())
	return appendIDs(b, followers)
}

func encodeTweet(b []byte, tw twitter.Tweet) []byte {
	b = append(b, recTweet)
	b = binary.AppendVarint(b, int64(tw.ID))
	b = binary.AppendVarint(b, int64(tw.Author))
	b = binary.AppendVarint(b, tw.CreatedAt.Unix())
	b = appendString(b, tw.Text)
	var flags byte
	if tw.IsRetweet {
		flags |= encRetweet
	}
	if tw.HasLink {
		flags |= encLink
	}
	if tw.IsReply {
		flags |= encReply
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, int64(tw.Mentions))
	b = binary.AppendVarint(b, int64(tw.Hashtags))
	return appendString(b, tw.Source)
}

func encodeSetFriends(b []byte, id twitter.UserID, friends []twitter.UserID) []byte {
	b = append(b, recSetFriends)
	b = binary.AppendVarint(b, int64(id))
	return appendIDs(b, friends)
}

// decoder walks a record payload. Every read is bounded by the remaining
// bytes — claimed string lengths and list counts included — so arbitrary
// input (FuzzWALDecode feeds exactly that) terminates without allocation
// amplification; the first short or malformed field makes the error sticky
// and every later read yields zero values.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed record payload")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) ids() []twitter.UserID {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// A varint takes at least one byte, so a claimed count beyond the
	// remaining bytes cannot be satisfied: reject before allocating.
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]twitter.UserID, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, twitter.UserID(d.varint()))
	}
	if d.err != nil {
		return nil
	}
	return out
}

// decodeRecord parses one framed payload. The frame CRC has already passed,
// so a decode failure here is real corruption (or a format skew), not a
// torn tail.
func decodeRecord(payload []byte) (record, error) {
	d := &decoder{b: payload}
	r := record{kind: d.byte()}
	switch r.kind {
	case recCreate:
		r.id = twitter.UserID(d.varint())
		r.params.ScreenName = d.str()
		r.params.CreatedAt = time.Unix(d.varint(), 0).UTC()
		r.params.LastTweet = time0(d.varint())
		r.params.Statuses = int(d.varint())
		r.params.Friends = int(d.varint())
		r.params.Followers = int(d.varint())
		flags := d.byte()
		r.params.Bio = flags&encBio != 0
		r.params.Location = flags&encLocation != 0
		r.params.URL = flags&encURL != 0
		r.params.DefaultProfileImage = flags&encDefaultImage != 0
		r.params.Protected = flags&encProtected != 0
		r.params.Verified = flags&encVerified != 0
		r.params.Class = twitter.Class(d.byte())
		r.params.Behavior.RetweetRatio = d.f64()
		r.params.Behavior.LinkRatio = d.f64()
		r.params.Behavior.SpamRatio = d.f64()
		r.params.Behavior.DuplicateRatio = d.f64()
	case recFollow, recUnfollow:
		r.target = twitter.UserID(d.varint())
		r.follower = twitter.UserID(d.varint())
		r.at = time.Unix(d.varint(), 0).UTC()
	case recPurge:
		r.target = twitter.UserID(d.varint())
		r.at = time.Unix(d.varint(), 0).UTC()
		r.batch = d.ids()
	case recTweet:
		r.tweet.ID = twitter.TweetID(d.varint())
		r.tweet.Author = twitter.UserID(d.varint())
		r.tweet.CreatedAt = time.Unix(d.varint(), 0).UTC()
		r.tweet.Text = d.str()
		flags := d.byte()
		r.tweet.IsRetweet = flags&encRetweet != 0
		r.tweet.HasLink = flags&encLink != 0
		r.tweet.IsReply = flags&encReply != 0
		r.tweet.Mentions = int(d.varint())
		r.tweet.Hashtags = int(d.varint())
		r.tweet.Source = d.str()
	case recSetFriends:
		r.id = twitter.UserID(d.varint())
		r.batch = d.ids()
	default:
		return record{}, fmt.Errorf("unknown record kind %d", r.kind)
	}
	if d.err != nil {
		return record{}, fmt.Errorf("record kind %d: %w", r.kind, d.err)
	}
	if len(d.b) != 0 {
		return record{}, fmt.Errorf("record kind %d: %d trailing bytes", r.kind, len(d.b))
	}
	return r, nil
}
