package wal_test

import (
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitter/difftest"
	"fakeproject/internal/wal"
)

// TestCompactionUnderConcurrentWriters races repeated compactions against
// writer goroutines churning follows, unfollows and tweets, then proves two
// things: the live store and a recovered-from-disk store observe identically
// (the snapshot cut plus the post-cut log tail lose and duplicate nothing),
// and nothing tripped the race detector (run under -race in CI).
func TestCompactionUnderConcurrentWriters(t *testing.T) {
	const (
		writers      = 4
		opsPerWriter = 400
	)
	dir := t.TempDir()
	store, wlog, _, err := wal.Open(wal.Config{
		Dir:       dir,
		Policy:    wal.PolicyInterval,
		SyncEvery: 2 * time.Millisecond,
		Clock:     simclock.NewVirtualAtEpoch(),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One target per writer keeps each goroutine's edge times monotone
	// without cross-writer coordination; followers are pre-created so the
	// churn loop is pure edge/tweet traffic.
	targets := make([]twitter.UserID, writers)
	followers := make([][]twitter.UserID, writers)
	for i := range targets {
		id, err := store.CreateUser(twitter.UserParams{})
		if err != nil {
			t.Fatal(err)
		}
		targets[i] = id
		for j := 0; j < 8; j++ {
			fid, err := store.CreateUser(twitter.UserParams{})
			if err != nil {
				t.Fatal(err)
			}
			followers[i] = append(followers[i], fid)
		}
	}

	var wg sync.WaitGroup
	writerErrs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target, flock := targets[i], followers[i]
			at := simclock.Epoch
			for n := 0; n < opsPerWriter; n++ {
				at = at.Add(time.Second)
				f := flock[n%len(flock)]
				var err error
				switch n % 4 {
				case 0, 1:
					err = store.AddFollower(target, f, at)
				case 2:
					_, err = store.Unfollow(target, f, at)
				case 3:
					_, err = store.AppendTweet(target, twitter.Tweet{CreatedAt: at, Text: "churn", Source: "test"})
				}
				if err != nil {
					writerErrs <- err
					return
				}
			}
		}(i)
	}

	// Compact continuously while the writers churn: every iteration cuts a
	// snapshot inside the writers' critical sections and truncates the log
	// behind it.
	stopCompact := make(chan struct{})
	compactErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopCompact:
				compactErr <- nil
				return
			case <-time.After(5 * time.Millisecond):
				if err := wlog.Compact(); err != nil {
					compactErr <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(writerErrs)
	for err := range writerErrs {
		t.Fatal(err)
	}
	close(stopCompact)
	if err := <-compactErr; err != nil {
		t.Fatal(err)
	}

	// One more compaction at quiescence so the final state crosses the
	// snapshot path too, then compare live vs recovered.
	if err := wlog.Compact(); err != nil {
		t.Fatal(err)
	}
	ocfg := difftest.ObserveConfig{PageLimit: 5}
	live, err := difftest.Observe(difftest.WrapStore(store), ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	store2, wlog2, stats, err := wal.Open(wal.Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	recovered, err := difftest.Observe(difftest.WrapStore(store2), ocfg)
	if err != nil {
		t.Fatal(err)
	}
	difftest.Normalize(&live, nil)
	difftest.Normalize(&recovered, nil)
	if d := difftest.DiffObservations(live, recovered); d != "" {
		t.Fatalf("recovered state diverges from live state: %s", d)
	}
	if stats.SnapshotLSN == 0 {
		t.Error("recovery did not start from a compacted snapshot")
	}
}
