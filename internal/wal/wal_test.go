package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func at(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// sampleRecords covers every record kind with non-trivial field values.
func sampleRecords() [][]byte {
	return [][]byte{
		encodeCreate(nil, 7, twitter.UserParams{
			ScreenName: "alice", CreatedAt: at(1234567), LastTweet: at(2345678),
			Statuses: 12, Friends: 34, Followers: 56,
			Bio: true, URL: true, Protected: true,
			Class:    twitter.ClassFake,
			Behavior: twitter.Behavior{RetweetRatio: 0.25, LinkRatio: 1, SpamRatio: 0.001, DuplicateRatio: 0.99},
		}),
		encodeCreate(nil, 8, twitter.UserParams{CreatedAt: at(0)}), // all-zero params, epoch create
		encodeEdge(nil, recFollow, 1, 2, at(99)),
		encodeEdge(nil, recUnfollow, 3, 4, at(100)),
		encodePurge(nil, 5, []twitter.UserID{9, 8, 7}, at(101)),
		encodePurge(nil, 5, nil, at(102)),
		encodeTweet(nil, twitter.Tweet{
			ID: 42, Author: 7, CreatedAt: at(103), Text: "hello, wal",
			IsRetweet: true, IsReply: true, Mentions: 2, Hashtags: 1, Source: "api",
		}),
		encodeSetFriends(nil, 7, []twitter.UserID{1, 2, 3}),
		encodeSetFriends(nil, 7, nil),
	}
}

func TestRecordRoundtrip(t *testing.T) {
	for i, payload := range sampleRecords() {
		rec, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		// Re-encoding the decoded record must reproduce the bytes: the
		// cheapest proof that no field is dropped or re-ordered.
		var again []byte
		switch rec.kind {
		case recCreate:
			again = encodeCreate(nil, rec.id, rec.params)
		case recFollow, recUnfollow:
			again = encodeEdge(nil, rec.kind, rec.target, rec.follower, rec.at)
		case recPurge:
			again = encodePurge(nil, rec.target, rec.batch, rec.at)
		case recTweet:
			again = encodeTweet(nil, rec.tweet)
		case recSetFriends:
			again = encodeSetFriends(nil, rec.id, rec.batch)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("record %d: roundtrip changed bytes:\n  %x\n  %x", i, payload, again)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := sampleRecords()
	cases := [][]byte{
		nil,
		{},
		{0},             // kind 0 is reserved invalid
		{99},            // unknown kind
		valid[0][:5],    // truncated create
		valid[6][:8],    // truncated tweet
		append(append([]byte(nil), valid[2]...), 0xFF), // trailing bytes
	}
	// Claimed list count far beyond remaining bytes must fail before
	// allocating.
	huge := []byte{recSetFriends, 2}
	huge = binary.AppendUvarint(huge, math.MaxUint32)
	cases = append(cases, huge)
	for i, c := range cases {
		if _, err := decodeRecord(c); err == nil {
			t.Errorf("case %d (%x): decode accepted malformed payload", i, c)
		}
	}
}

// buildSegment assembles in-memory segment bytes: header + framed payloads.
func buildSegment(start uint64, payloads [][]byte) []byte {
	var buf bytes.Buffer
	var hdr [headerLen]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], start)
	buf.Write(hdr[:])
	for _, p := range payloads {
		var frame [frameLen]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(p, crcTable))
		buf.Write(frame[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

func TestReadRecordsTornTails(t *testing.T) {
	payloads := sampleRecords()
	full := buildSegment(1, payloads)
	// Every truncation of the byte stream must either read a clean prefix
	// of records or report a torn tail — never an error, never a panic.
	for cut := 0; cut < len(full); cut++ {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		start, torn, err := parseSegmentHeader(br)
		if err != nil {
			t.Fatalf("cut %d: header error: %v", cut, err)
		}
		if torn {
			if cut >= headerLen {
				t.Fatalf("cut %d: full header reported torn", cut)
			}
			continue
		}
		if start != 1 {
			t.Fatalf("cut %d: start = %d", cut, start)
		}
		n, torn, err := readRecords(br, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if cut == len(full) && (torn || n != uint64(len(payloads))) {
			t.Fatalf("full stream: n=%d torn=%v", n, torn)
		}
		if cut < len(full) && !torn && n == uint64(len(payloads)) {
			t.Fatalf("cut %d: truncated stream read everything cleanly", cut)
		}
	}
	// A flipped payload bit breaks the CRC: the stream must end (torn) at
	// that record, keeping the clean prefix.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-3] ^= 0x40
	br := bufio.NewReader(bytes.NewReader(corrupt))
	if _, _, err := parseSegmentHeader(br); err != nil {
		t.Fatal(err)
	}
	n, torn, err := readRecords(br, nil)
	if err != nil || !torn || n != uint64(len(payloads)-1) {
		t.Fatalf("corrupt tail: n=%d torn=%v err=%v", n, torn, err)
	}
}

func TestOpenEmptyAppendReopen(t *testing.T) {
	dir := t.TempDir()
	for _, policy := range []Policy{PolicyAlways, PolicyInterval, PolicyOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := filepath.Join(dir, policy.String())
			clock := simclock.NewVirtualAtEpoch()
			store, l, stats, err := Open(Config{Dir: dir, Policy: policy, SyncEvery: time.Millisecond, Clock: clock, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if stats.LastLSN != 0 || stats.Users != 0 {
				t.Fatalf("fresh dir recovered %+v", stats)
			}
			var ids []twitter.UserID
			for i := 0; i < 5; i++ {
				id, err := store.CreateUser(twitter.UserParams{Statuses: i})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			for _, f := range ids[1:] {
				if err := store.AddFollower(ids[0], f, clock.Now()); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := store.AppendTweet(ids[0], twitter.Tweet{CreatedAt: clock.Now(), Text: "t", Source: "web"}); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Unfollow(ids[0], ids[1], clock.Now()); err != nil {
				t.Fatal(err)
			}
			if err := store.SetFriends(ids[0], ids[2:4]); err != nil {
				t.Fatal(err)
			}
			wantLSN := l.LastLSN()
			if wantLSN != 12 { // 5 creates + 4 follows + 1 tweet + 1 unfollow + 1 set-friends
				t.Fatalf("LastLSN = %d, want 12", wantLSN)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := store.CreateUser(twitter.UserParams{}); err == nil {
				t.Fatal("mutation after Close succeeded")
			}

			store2, l2, stats2, err := Open(Config{Dir: dir, Policy: policy, Clock: simclock.NewVirtualAtEpoch(), Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if stats2.LastLSN != wantLSN || stats2.RecordsReplayed != wantLSN || stats2.TornTail {
				t.Fatalf("recovery stats %+v, want %d records", stats2, wantLSN)
			}
			if store2.UserCount() != 5 {
				t.Fatalf("recovered %d users", store2.UserCount())
			}
			fc, _ := store2.FollowerCount(ids[0])
			if fc != 3 {
				t.Fatalf("recovered follower count %d, want 3", fc)
			}
			tl, _ := store2.Timeline(ids[0], 10)
			if len(tl) != 1 || tl[0].Text != "t" {
				t.Fatalf("recovered timeline %+v", tl)
			}
			friends, ok := store2.Friends(ids[0])
			if !ok || len(friends) != 2 {
				t.Fatalf("recovered friends %v %v", friends, ok)
			}
		})
	}
}

func TestCompactTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtualAtEpoch()
	store, l, _, err := Open(Config{Dir: dir, Policy: PolicyOff, Clock: clock, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	target, err := store.CreateUser(twitter.UserParams{ScreenName: "celebrity"})
	if err != nil {
		t.Fatal(err)
	}
	mkFollower := func() twitter.UserID {
		id, err := store.CreateUser(twitter.UserParams{})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.AddFollower(target, id, clock.Now()); err != nil {
			t.Fatal(err)
		}
		return id
	}
	for i := 0; i < 10; i++ {
		mkFollower()
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	cut := l.LastLSN()
	// Pruning must leave exactly one snapshot (at the cut) and one live
	// segment (starting after it).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]bool{}
	for _, e := range entries {
		files[e.Name()] = true
	}
	if len(files) != 2 || !files[segmentName(cut+1)] || !files[snapshotName(cut)] {
		t.Fatalf("after compaction dir holds %v, want exactly {%s, %s}", files, segmentName(cut+1), snapshotName(cut))
	}
	// More ops after the cut land in the new segment and replay on top of
	// the snapshot.
	for i := 0; i < 5; i++ {
		mkFollower()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	store2, l2, stats, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.SnapshotLSN != cut || stats.RecordsReplayed != 10 { // 5 creates + 5 follows past the cut
		t.Fatalf("recovery stats %+v, want snapshot at %d + 10 replayed", stats, cut)
	}
	fc, _ := store2.FollowerCount(target)
	if fc != 15 {
		t.Fatalf("follower count %d, want 15", fc)
	}
	if name, _ := store2.ScreenName(target); name != "celebrity" {
		t.Fatalf("screen name %q survived compaction wrong", name)
	}
}

func TestRecoveryRejectsGaps(t *testing.T) {
	dir := t.TempDir()
	create := encodeCreate(nil, 1, twitter.UserParams{CreatedAt: at(10)})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buildSegment(1, [][]byte{create}), 0o644); err != nil {
		t.Fatal(err)
	}
	// A segment claiming to start at 5 after a one-record segment leaves
	// records 3..4 unaccounted for: recovery must refuse, not guess.
	if err := os.WriteFile(filepath.Join(dir, segmentName(5)), buildSegment(5, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch()})
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not detected: %v", err)
	}
}

func TestRecoveryRejectsHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	// Header says start=3 but the file is named wal-…01: corruption.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buildSegment(3, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch()}); err == nil {
		t.Fatal("header/name mismatch not detected")
	}
}

func TestTornTailMidChainTolerated(t *testing.T) {
	// Segment 1 holds a follow for a store with two users, then a torn
	// record; segment 2 resumes exactly after the tear — the shape a
	// crash-then-restart leaves behind.
	dir := t.TempDir()
	create1 := encodeCreate(nil, 1, twitter.UserParams{CreatedAt: at(10)})
	create2 := encodeCreate(nil, 2, twitter.UserParams{CreatedAt: at(11)})
	follow := encodeEdge(nil, recFollow, 1, 2, at(12))
	seg1 := buildSegment(1, [][]byte{create1, create2, follow})
	seg1 = append(seg1, 0xde, 0xad, 0xbe) // partial frame
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	follow2 := encodeEdge(nil, recFollow, 2, 1, at(13))
	if err := os.WriteFile(filepath.Join(dir, segmentName(4)), buildSegment(4, [][]byte{follow2}), 0o644); err != nil {
		t.Fatal(err)
	}
	store, l, stats, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.RecordsReplayed != 4 || stats.LastLSN != 4 {
		t.Fatalf("stats %+v, want 4 records", stats)
	}
	for id, want := range map[twitter.UserID]int{1: 1, 2: 1} {
		if fc, _ := store.FollowerCount(id); fc != want {
			t.Fatalf("follower count of %d = %d", id, fc)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"always": PolicyAlways, "interval": PolicyInterval, "off": PolicyOff, "": PolicyInterval} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSegmentNameRoundtrip(t *testing.T) {
	for _, n := range []uint64{0, 1, 255, 1 << 40, math.MaxUint64} {
		if got, ok := parseSegmentName(segmentName(n)); !ok || got != n {
			t.Fatalf("segment name roundtrip of %d: %d %v", n, got, ok)
		}
		if got, ok := parseSnapshotName(snapshotName(n)); !ok || got != n {
			t.Fatalf("snapshot name roundtrip of %d: %d %v", n, got, ok)
		}
	}
	for _, bad := range []string{"wal-zz.log", "wal-0000000000000001.log.tmp", "snap.tmp", "wal-1.log", "pop.gob"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
		if _, ok := parseSnapshotName(bad); ok {
			t.Fatalf("parseSnapshotName accepted %q", bad)
		}
	}
}

func TestSeedSnapshotImport(t *testing.T) {
	// Build a population the classic way, dump it with WriteSnapshot, then
	// boot a WAL dir importing it: the population must be durable in-dir
	// immediately, and live ops must replay on top after a crash.
	clock := simclock.NewVirtualAtEpoch()
	seedStore := twitter.NewStore(clock, 4)
	target, err := seedStore.CreateUser(twitter.UserParams{ScreenName: "seeded"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id, err := seedStore.CreateUser(twitter.UserParams{})
		if err != nil {
			t.Fatal(err)
		}
		if err := seedStore.AddFollower(target, id, clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	seedPath := filepath.Join(t.TempDir(), "pop.gob")
	f, err := os.Create(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seedStore.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dir := t.TempDir()
	store, l, _, err := Open(Config{Dir: dir, SeedSnapshot: seedPath, Policy: PolicyAlways, Clock: simclock.NewVirtualAtEpoch(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if store.UserCount() != 4 {
		t.Fatalf("imported %d users", store.UserCount())
	}
	extra, err := store.CreateUser(twitter.UserParams{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddFollower(target, extra, store.Now()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Open with SeedSnapshot set must refuse: the dir has history.
	if _, _, _, err := Open(Config{Dir: dir, SeedSnapshot: seedPath, Clock: simclock.NewVirtualAtEpoch()}); err == nil {
		t.Fatal("re-import over an existing WAL dir was allowed")
	}
	store2, l2, stats, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.RecordsReplayed != 2 || store2.UserCount() != 5 {
		t.Fatalf("stats %+v, users %d; want 2 replayed, 5 users", stats, store2.UserCount())
	}
	fc, _ := store2.FollowerCount(target)
	if fc != 4 {
		t.Fatalf("follower count %d, want 4", fc)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtualAtEpoch()
	store, l, _, err := Open(Config{Dir: dir, Policy: PolicyOff, SyncEvery: time.Millisecond, CompactEvery: 50, Clock: clock, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	target, err := store.CreateUser(twitter.UserParams{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id, err := store.CreateUser(twitter.UserParams{})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.AddFollower(target, id, clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for l.compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-compaction never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tail := l.LastLSN() - l.lastCompactLSN.Load(); tail > 401 {
		t.Fatalf("tail still %d records after auto-compaction", tail)
	}
}

func TestWriterFailsSticky(t *testing.T) {
	dir := t.TempDir()
	w, err := openWriter(dir, 0, PolicyAlways, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := w.append(make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	lsn, err := w.append([]byte{recFollow, 2, 4, 6})
	if err != nil || lsn != 1 {
		t.Fatalf("append: %d, %v", lsn, err)
	}
	if err := w.sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append([]byte{1}); !errors.Is(err, errWriterClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func TestRotateCollisionAfterEmptyBoot(t *testing.T) {
	// Boot, append nothing, crash (abandon). The next boot replays zero
	// records and wants to create the same segment name; the empty
	// leftover must be replaced, not tripped over.
	dir := t.TempDir()
	_, l, _, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = l // abandoned without Close: simulated crash
	store2, l2, stats, err := Open(Config{Dir: dir, Clock: simclock.NewVirtualAtEpoch(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.LastLSN != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if _, err := store2.CreateUser(twitter.UserParams{}); err != nil {
		t.Fatal(err)
	}
	if store2.UserCount() != 1 {
		t.Fatalf("user count %d", store2.UserCount())
	}
}
