package wal_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitter/difftest"
	"fakeproject/internal/wal"
)

// Mirrors of the twitter package's persist structs. gob matches fields by
// name and omits zero values, so one struct set fabricates every legacy
// stream version: a v1 snapshot is simply one with the newer fields left
// zero and Version set to 1.
type legacyRecord struct {
	CreatedAt   int64
	LastTweetAt int64
	Statuses    int32
	Friends     int32
	Followers   int32
	Seed        uint32
	Flags       uint8
	Class       uint8
	RetweetPct  uint8
	LinkPct     uint8
	SpamPct     uint8
	DupPct      uint8
}

type legacyFollow struct {
	Follower int64
	At       int64
	Seq      uint64
}

type legacyTweet struct {
	ID        int64
	CreatedAt int64
	Text      string
	IsRetweet bool
	HasLink   bool
	IsReply   bool
	Mentions  int32
	Hashtags  int32
	Source    string
}

type legacyTarget struct {
	ID         int64
	Follows    []legacyFollow
	Tweets     []legacyTweet
	Friends    []int64
	Removed    []legacyFollow
	SeqCounter uint64
}

type legacySnapshot struct {
	Version   int
	NameSeed  uint64
	TweetSeq  int64
	Records   []legacyRecord
	Names     map[int64]string
	Targets   []legacyTarget
	ClockUnix int64
}

// fabricateLegacy builds a version-v snapshot stream of a small population:
// three accounts, one explicit name, one target with two followers and a
// tweet, plus (v >= 2) a removal-log entry and a clock position.
func fabricateLegacy(v int) []byte {
	created := simclock.Epoch.AddDate(-2, 0, 0).Unix()
	rec := func(statuses int32) legacyRecord {
		return legacyRecord{
			CreatedAt: created, Statuses: statuses, Friends: 10, Followers: 20,
			Seed: 99, Class: uint8(twitter.ClassGenuine), RetweetPct: 30, LinkPct: 40,
		}
	}
	snap := legacySnapshot{
		Version:  v,
		NameSeed: 7,
		TweetSeq: 1,
		Records:  []legacyRecord{rec(3), rec(0), rec(0)},
		Names:    map[int64]string{1: "legacy_ace"},
	}
	t0 := simclock.Epoch.Add(-time.Hour).Unix()
	target := legacyTarget{
		ID: 1,
		Follows: []legacyFollow{
			{Follower: 2, At: t0},
			{Follower: 3, At: t0 + 60},
		},
		Tweets:  []legacyTweet{{ID: 1, CreatedAt: t0 + 90, Text: "from the old world", Source: "web"}},
		Friends: []int64{2},
	}
	if v >= 2 {
		target.Removed = []legacyFollow{{Follower: 3, At: t0 + 120}}
		snap.ClockUnix = t0 + 120
	}
	if v >= 3 {
		for i := range target.Follows {
			target.Follows[i].Seq = uint64(i + 1)
		}
		target.Removed[0].Seq = 3
		target.SeqCounter = 3
	}
	snap.Targets = []legacyTarget{target}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestLegacySnapshotThenWALReplay proves the durability plane composes with
// every snapshot version this build reads: a fabricated v1/v2/v3 stream
// placed in the WAL directory recovers into a sharded store, live ops append
// to the log on top of it, and a restart replays them onto the same legacy
// base.
func TestLegacySnapshotThenWALReplay(t *testing.T) {
	for v := 1; v <= 3; v++ {
		v := v
		t.Run(fmt.Sprintf("v%d", v), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000000.gob"), fabricateLegacy(v), 0o644); err != nil {
				t.Fatal(err)
			}
			store, wlog, stats, err := wal.Open(wal.Config{
				Dir:    dir,
				Policy: wal.PolicyAlways,
				Clock:  simclock.NewVirtualAtEpoch(),
				Seed:   7,
				StoreOpts: []twitter.Option{twitter.WithShards(4)},
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.SnapshotPath == "" || stats.RecordsReplayed != 0 {
				t.Fatalf("legacy boot stats %+v", stats)
			}
			if store.UserCount() != 3 {
				t.Fatalf("legacy snapshot loaded %d users", store.UserCount())
			}
			if id, err := store.LookupName("legacy_ace"); err != nil || id != 1 {
				t.Fatalf("explicit legacy name: %d, %v", id, err)
			}

			// Live traffic on top of the legacy base, through the WAL.
			now := store.Now()
			newbie, err := store.CreateUser(twitter.UserParams{ScreenName: "newcomer", CreatedAt: now})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.AddFollower(1, newbie, now.Add(time.Minute)); err != nil {
				t.Fatal(err)
			}
			if _, err := store.AppendTweet(1, twitter.Tweet{CreatedAt: now.Add(2 * time.Minute), Text: "still here", Source: "web"}); err != nil {
				t.Fatal(err)
			}
			if _, err := store.RemoveFollowers(1, []twitter.UserID{2}, now.Add(3*time.Minute)); err != nil {
				t.Fatal(err)
			}

			explicit := map[twitter.UserID]string{1: "legacy_ace", newbie: "newcomer"}
			ocfg := difftest.ObserveConfig{
				PageLimit:  2,
				TweetUsers: []twitter.UserID{1},
				Names:      []string{"legacy_ace", "newcomer"},
			}
			live, err := difftest.Observe(difftest.WrapStore(store), ocfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := wlog.Close(); err != nil {
				t.Fatal(err)
			}

			store2, wlog2, stats2, err := wal.Open(wal.Config{
				Dir:   dir,
				Clock: simclock.NewVirtualAtEpoch(),
				Seed:  7,
				StoreOpts: []twitter.Option{twitter.WithShards(2)},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer wlog2.Close()
			if stats2.RecordsReplayed != 4 {
				t.Fatalf("replayed %d records on the legacy base, want 4", stats2.RecordsReplayed)
			}
			recovered, err := difftest.Observe(difftest.WrapStore(store2), ocfg)
			if err != nil {
				t.Fatal(err)
			}
			difftest.Normalize(&live, explicit)
			difftest.Normalize(&recovered, explicit)
			if d := difftest.DiffObservations(live, recovered); d != "" {
				t.Fatalf("v%d base + WAL replay diverged: %s", v, d)
			}

			// Compaction folds the legacy base and the replayed tail into a
			// fresh canonical (v4) snapshot; the old stream is pruned.
			if err := wlog2.Compact(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000000.gob")); !os.IsNotExist(err) {
				t.Fatalf("legacy snapshot not pruned after compaction: %v", err)
			}
		})
	}
}
