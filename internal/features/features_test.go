package features

import (
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func activeProfile() twitter.Profile {
	return twitter.Profile{
		User: twitter.User{
			ID:         1,
			ScreenName: "genuine",
			CreatedAt:  simclock.Epoch.AddDate(-2, 0, 0),
			Bio:        "hello",
			Location:   "Pisa",
		},
		FollowersCount: 500,
		FriendsCount:   250,
		StatusesCount:  730,
		LastTweetAt:    simclock.Epoch.AddDate(0, 0, -3),
		Behavior:       twitter.Behavior{RetweetRatio: 0.2, LinkRatio: 0.3, SpamRatio: 0, DuplicateRatio: 0.05},
	}
}

func ctxOf(p twitter.Profile) *Context {
	return &Context{Profile: p, Now: simclock.Epoch}
}

func TestAgeDays(t *testing.T) {
	ctx := ctxOf(activeProfile())
	if got := AgeDays(ctx); got < 729 || got > 732 {
		t.Fatalf("AgeDays = %v, want ≈730.5", got)
	}
	if got := AgeDays(&Context{Now: simclock.Epoch}); got != 0 {
		t.Fatalf("zero CreatedAt AgeDays = %v", got)
	}
}

func TestLastTweetAgeDays(t *testing.T) {
	ctx := ctxOf(activeProfile())
	if got := LastTweetAgeDays(ctx); got != 3 {
		t.Fatalf("LastTweetAgeDays = %v, want 3", got)
	}
	p := activeProfile()
	p.LastTweetAt = time.Time{}
	if got := LastTweetAgeDays(ctxOf(p)); got != 3650 {
		t.Fatalf("never-tweeted sentinel = %v, want 3650", got)
	}
	p.LastTweetAt = simclock.Epoch.Add(time.Hour) // clock skew
	if got := LastTweetAgeDays(ctxOf(p)); got != 0 {
		t.Fatalf("future last tweet age = %v, want clamp 0", got)
	}
}

func TestTweetsPerDay(t *testing.T) {
	ctx := ctxOf(activeProfile())
	got := TweetsPerDay(ctx)
	if got < 0.99 || got > 1.01 {
		t.Fatalf("TweetsPerDay = %v, want ≈1", got)
	}
}

func TestTimelineRatiosFromCrawledTimeline(t *testing.T) {
	tl := []twitter.Tweet{
		{Text: "normal tweet"},
		{Text: "make money fast http://x", HasLink: true},
		{Text: "RT @x: hi", IsRetweet: true},
		{Text: "make money fast http://x", HasLink: true},
	}
	ctx := &Context{Profile: activeProfile(), Timeline: tl, TimelineCrawled: true, Now: simclock.Epoch}
	if got := RetweetRatio(ctx); got != 0.25 {
		t.Fatalf("RetweetRatio = %v, want 0.25", got)
	}
	if got := LinkRatio(ctx); got != 0.5 {
		t.Fatalf("LinkRatio = %v, want 0.5", got)
	}
	if got := SpamPhraseRatio(ctx); got != 0.5 {
		t.Fatalf("SpamPhraseRatio = %v, want 0.5", got)
	}
	if got := DuplicateRatio(ctx); got != 0.5 {
		t.Fatalf("DuplicateRatio = %v, want 0.5", got)
	}
	if got := MaxDuplicateRun(ctx); got != 2 {
		t.Fatalf("MaxDuplicateRun = %v, want 2", got)
	}
}

func TestTimelineRatiosFallBackToBehavior(t *testing.T) {
	ctx := ctxOf(activeProfile())
	if got := RetweetRatio(ctx); got != 0.2 {
		t.Fatalf("fallback RetweetRatio = %v, want behaviour 0.2", got)
	}
	if got := LinkRatio(ctx); got != 0.3 {
		t.Fatalf("fallback LinkRatio = %v, want 0.3", got)
	}
	if got := DuplicateRatio(ctx); got != 0.05 {
		t.Fatalf("fallback DuplicateRatio = %v, want 0.05", got)
	}
}

func TestBidirectionalLinkRatio(t *testing.T) {
	ctx := &Context{
		Friends:   []twitter.UserID{1, 2, 3, 4},
		Followers: []twitter.UserID{2, 4, 9},
		Now:       simclock.Epoch,
	}
	if got := BidirectionalLinkRatio(ctx); got != 0.5 {
		t.Fatalf("BidirectionalLinkRatio = %v, want 0.5", got)
	}
	if got := BidirectionalLinkRatio(&Context{}); got != 0 {
		t.Fatalf("empty friends ratio = %v, want 0", got)
	}
}

func TestProfileSetAllCostA(t *testing.T) {
	s := ProfileSet()
	if s.MaxCost() != CostA {
		t.Fatalf("ProfileSet MaxCost = %v, want A", s.MaxCost())
	}
	vec := s.Extract(ctxOf(activeProfile()))
	if len(vec) != len(s.Features) {
		t.Fatalf("vector length %d != %d features", len(vec), len(s.Features))
	}
}

func TestLookupSetAllCostA(t *testing.T) {
	s := LookupSet()
	if s.MaxCost() != CostA {
		t.Fatalf("LookupSet MaxCost = %v, want A (answerable from lookups)", s.MaxCost())
	}
}

func TestFullSetCosts(t *testing.T) {
	s := FullSet()
	if s.MaxCost() != CostC {
		t.Fatalf("FullSet MaxCost = %v, want C", s.MaxCost())
	}
	a := s.Filter(CostA)
	for _, f := range a.Features {
		if f.Cost != CostA {
			t.Fatalf("Filter(CostA) leaked %s (%v)", f.Name, f.Cost)
		}
	}
	b := s.Filter(CostB)
	if len(b.Features) <= len(a.Features) {
		t.Fatal("CostB filter should keep more features than CostA")
	}
}

func TestCrawlCostOrdering(t *testing.T) {
	profile := ProfileSet().CrawlCost()
	stringhini := StringhiniSet().CrawlCost()
	yang := YangSet().CrawlCost()
	if !(profile < stringhini && stringhini < yang) {
		t.Fatalf("cost ordering violated: profile=%v stringhini=%v yang=%v",
			profile, stringhini, yang)
	}
}

func TestSetNamesAlignWithVector(t *testing.T) {
	for _, s := range []Set{ProfileSet(), LookupSet(), FullSet(), StringhiniSet(), YangSet()} {
		names := s.Names()
		if len(names) != len(s.Features) {
			t.Fatalf("%s: names/features mismatch", s.Name)
		}
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" {
				t.Fatalf("%s: empty feature name", s.Name)
			}
			if seen[n] {
				t.Fatalf("%s: duplicate feature %q", s.Name, n)
			}
			seen[n] = true
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	s := FullSet()
	ctx := ctxOf(activeProfile())
	a := s.Extract(ctx)
	b := s.Extract(ctx)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %s not deterministic", s.Features[i].Name)
		}
	}
}

func TestFakeVsGenuineSeparation(t *testing.T) {
	// A canonical bought-follower profile must differ from a genuine one on
	// the signals every tool in the paper leans on.
	fake := twitter.Profile{
		User: twitter.User{
			ID:                  2,
			CreatedAt:           simclock.Epoch.AddDate(0, -3, 0),
			DefaultProfileImage: true,
		},
		FollowersCount: 2,
		FriendsCount:   1500,
		StatusesCount:  0,
		Behavior:       twitter.Behavior{},
	}
	fctx := ctxOf(fake)
	gctx := ctxOf(activeProfile())
	if FollowerFriend := fake.FollowerFriendRatio(); FollowerFriend >= 0.1 {
		t.Fatalf("fake ff ratio = %v, want tiny", FollowerFriend)
	}
	if LastTweetAgeDays(fctx) <= LastTweetAgeDays(gctx) {
		t.Fatal("fake should look more dormant than genuine")
	}
	if AgeDays(fctx) >= AgeDays(gctx) {
		t.Fatal("fake should be younger than genuine")
	}
}
