// Package features extracts classification features from Twitter accounts,
// organised by *crawling cost* as in the Fake Project methodology
// (Section III: "we have quantified their crawling cost and we built a set
// of optimized classifiers that make use of the more efficient features").
//
// Cost classes:
//
//   - CostA: derivable from a users/lookup profile alone (cheapest — 100
//     accounts per API call).
//   - CostB: requires the account's timeline (one user_timeline call per
//     account, 200 tweets per call).
//   - CostC: requires relationship lists (followers/friends of the account —
//     one rate-limited call per 5,000 edges, the most expensive).
package features

import (
	"strings"
	"time"

	"fakeproject/internal/twitter"
)

// CostClass ranks features by crawling cost. Start at one so the zero value
// is invalid.
type CostClass int

// Cost classes in increasing order of expense.
const (
	CostA CostClass = iota + 1 // profile only
	CostB                      // timeline required
	CostC                      // relationship lists required
)

// String implements fmt.Stringer.
func (c CostClass) String() string {
	switch c {
	case CostA:
		return "A(profile)"
	case CostB:
		return "B(timeline)"
	case CostC:
		return "C(relations)"
	default:
		return "invalid"
	}
}

// Context carries everything known about one account at extraction time.
// Timeline and relationship fields may be nil when the crawler did not pay
// for them; features needing them fall back as documented on each feature.
type Context struct {
	Profile twitter.Profile
	// Timeline holds the account's most recent tweets, newest first
	// (nil if not crawled).
	Timeline []twitter.Tweet
	// TimelineCrawled distinguishes "not crawled" from "crawled and empty".
	TimelineCrawled bool
	// Friends and Followers are relationship ID lists (nil if not crawled).
	Friends   []twitter.UserID
	Followers []twitter.UserID
	// Now is the observation instant (drives age and recency features).
	Now time.Time
}

// Feature is a single named, costed extractor.
type Feature struct {
	Name string
	Cost CostClass
	// Extract computes the feature value; it must be a pure function of
	// the Context.
	Extract func(*Context) float64
}

// Set is an ordered collection of features.
type Set struct {
	Name     string
	Features []Feature
}

// Names returns the feature names in order.
func (s Set) Names() []string {
	out := make([]string, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Name
	}
	return out
}

// MaxCost returns the most expensive cost class used by the set.
func (s Set) MaxCost() CostClass {
	max := CostA
	for _, f := range s.Features {
		if f.Cost > max {
			max = f.Cost
		}
	}
	return max
}

// Filter returns a sub-set containing only features within the cost budget.
func (s Set) Filter(budget CostClass) Set {
	out := Set{Name: s.Name + "-cost" + budget.String()}
	for _, f := range s.Features {
		if f.Cost <= budget {
			out.Features = append(out.Features, f)
		}
	}
	return out
}

// Extract computes the feature vector of ctx under this set.
func (s Set) Extract(ctx *Context) []float64 {
	out := make([]float64, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Extract(ctx)
	}
	return out
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// AgeDays returns the account age in days at observation time.
func AgeDays(ctx *Context) float64 {
	if ctx.Profile.CreatedAt.IsZero() {
		return 0
	}
	return ctx.Now.Sub(ctx.Profile.CreatedAt).Hours() / 24
}

// LastTweetAgeDays returns days since the last tweet; never-tweeted accounts
// return a large sentinel (3650) so that tree splits can isolate them.
func LastTweetAgeDays(ctx *Context) float64 {
	if ctx.Profile.LastTweetAt.IsZero() {
		return 3650
	}
	age := ctx.Now.Sub(ctx.Profile.LastTweetAt).Hours() / 24
	if age < 0 {
		return 0
	}
	return age
}

// TweetsPerDay returns the account's lifetime tweeting rate.
func TweetsPerDay(ctx *Context) float64 {
	age := AgeDays(ctx)
	if age < 1 {
		age = 1
	}
	return float64(ctx.Profile.StatusesCount) / age
}

// timeline ratio helpers: prefer the crawled timeline; fall back to the
// extended-lookup behaviour ratios (see DESIGN.md §5).

func timelineRatio(ctx *Context, pred func(twitter.Tweet) bool, fallback float64) float64 {
	if !ctx.TimelineCrawled || len(ctx.Timeline) == 0 {
		return fallback
	}
	hits := 0
	for _, tw := range ctx.Timeline {
		if pred(tw) {
			hits++
		}
	}
	return float64(hits) / float64(len(ctx.Timeline))
}

// RetweetRatio is the fraction of retweets in the timeline.
func RetweetRatio(ctx *Context) float64 {
	return timelineRatio(ctx, func(tw twitter.Tweet) bool { return tw.IsRetweet },
		ctx.Profile.Behavior.RetweetRatio)
}

// LinkRatio is the fraction of tweets carrying URLs.
func LinkRatio(ctx *Context) float64 {
	return timelineRatio(ctx, func(tw twitter.Tweet) bool { return tw.HasLink },
		ctx.Profile.Behavior.LinkRatio)
}

// SpamPhraseRatio is the fraction of tweets containing known spam phrases.
func SpamPhraseRatio(ctx *Context) float64 {
	return timelineRatio(ctx, func(tw twitter.Tweet) bool {
		lower := strings.ToLower(tw.Text)
		for _, phrase := range twitter.SpamPhrases {
			if strings.Contains(lower, phrase) {
				return true
			}
		}
		return false
	}, ctx.Profile.Behavior.SpamRatio)
}

// DuplicateRatio is the fraction of tweets whose text duplicates another
// tweet of the same account ("the same tweets are repeated more than three
// times" criterion's underlying quantity).
func DuplicateRatio(ctx *Context) float64 {
	if !ctx.TimelineCrawled || len(ctx.Timeline) == 0 {
		return ctx.Profile.Behavior.DuplicateRatio
	}
	counts := make(map[string]int, len(ctx.Timeline))
	for _, tw := range ctx.Timeline {
		counts[tw.Text]++
	}
	dups := 0
	for _, c := range counts {
		if c > 1 {
			dups += c
		}
	}
	return float64(dups) / float64(len(ctx.Timeline))
}

// MaxDuplicateRun returns the highest repetition count of any single tweet
// text (Socialbakers: "the same tweets are repeated more than three times").
func MaxDuplicateRun(ctx *Context) float64 {
	if !ctx.TimelineCrawled || len(ctx.Timeline) == 0 {
		// Approximate from the duplicate ratio over an assumed 20-tweet
		// window; preserves ordering across accounts.
		return ctx.Profile.Behavior.DuplicateRatio * 20
	}
	counts := make(map[string]int, len(ctx.Timeline))
	max := 0
	for _, tw := range ctx.Timeline {
		counts[tw.Text]++
		if counts[tw.Text] > max {
			max = counts[tw.Text]
		}
	}
	return float64(max)
}

// ReplyRatio is the fraction of replies in the timeline (a Stringhini-style
// interaction feature; fake accounts rarely converse).
func ReplyRatio(ctx *Context) float64 {
	return timelineRatio(ctx, func(tw twitter.Tweet) bool { return tw.IsReply }, 0.1)
}

// MentionsPerTweet averages @-mentions per tweet.
func MentionsPerTweet(ctx *Context) float64 {
	if !ctx.TimelineCrawled || len(ctx.Timeline) == 0 {
		return 1
	}
	total := 0
	for _, tw := range ctx.Timeline {
		total += tw.Mentions
	}
	return float64(total) / float64(len(ctx.Timeline))
}

// HashtagsPerTweet averages hashtags per tweet.
func HashtagsPerTweet(ctx *Context) float64 {
	if !ctx.TimelineCrawled || len(ctx.Timeline) == 0 {
		return 1
	}
	total := 0
	for _, tw := range ctx.Timeline {
		total += tw.Hashtags
	}
	return float64(total) / float64(len(ctx.Timeline))
}

// BidirectionalLinkRatio is the fraction of the account's friends that also
// follow it back, computable only with both relationship lists crawled
// (Yang et al.'s strongest — and most expensive — spam feature).
func BidirectionalLinkRatio(ctx *Context) float64 {
	if len(ctx.Friends) == 0 {
		return 0
	}
	followers := make(map[twitter.UserID]struct{}, len(ctx.Followers))
	for _, id := range ctx.Followers {
		followers[id] = struct{}{}
	}
	both := 0
	for _, id := range ctx.Friends {
		if _, ok := followers[id]; ok {
			both++
		}
	}
	return float64(both) / float64(len(ctx.Friends))
}

// ProfileSet returns the class-A feature set: everything derivable from a
// users/lookup batch, i.e. what an auditor can afford when it must answer
// within seconds (the "optimized classifier" of Section III).
func ProfileSet() Set {
	return Set{
		Name: "profile",
		Features: []Feature{
			{Name: "followers_count", Cost: CostA, Extract: func(c *Context) float64 { return float64(c.Profile.FollowersCount) }},
			{Name: "friends_count", Cost: CostA, Extract: func(c *Context) float64 { return float64(c.Profile.FriendsCount) }},
			{Name: "statuses_count", Cost: CostA, Extract: func(c *Context) float64 { return float64(c.Profile.StatusesCount) }},
			{Name: "follower_friend_ratio", Cost: CostA, Extract: func(c *Context) float64 { return c.Profile.FollowerFriendRatio() }},
			{Name: "age_days", Cost: CostA, Extract: AgeDays},
			{Name: "last_tweet_age_days", Cost: CostA, Extract: LastTweetAgeDays},
			{Name: "tweets_per_day", Cost: CostA, Extract: TweetsPerDay},
			{Name: "has_bio", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.Bio != "") }},
			{Name: "has_location", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.Location != "") }},
			{Name: "has_url", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.URL != "") }},
			{Name: "default_profile_image", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.DefaultProfileImage) }},
			{Name: "protected", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.Protected) }},
			{Name: "verified", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.Verified) }},
			{Name: "never_tweeted", Cost: CostA, Extract: func(c *Context) float64 { return boolF(c.Profile.HasNeverTweeted()) }},
		},
	}
}

// StringhiniSet returns the feature set of Stringhini, Kruegel, Vigna,
// "Detecting spammers on social networks" (ACSAC 2010), adapted to Twitter:
// FF ratio, URL ratio, message similarity (duplicates), friend number,
// messages sent.
func StringhiniSet() Set {
	return Set{
		Name: "stringhini",
		Features: []Feature{
			{Name: "ff_ratio", Cost: CostA, Extract: func(c *Context) float64 {
				// Stringhini defines FF as friends(following)/followers.
				if c.Profile.FollowersCount == 0 {
					return float64(c.Profile.FriendsCount)
				}
				return float64(c.Profile.FriendsCount) / float64(c.Profile.FollowersCount)
			}},
			{Name: "url_ratio", Cost: CostB, Extract: LinkRatio},
			{Name: "message_similarity", Cost: CostB, Extract: DuplicateRatio},
			{Name: "friends_count", Cost: CostA, Extract: func(c *Context) float64 { return float64(c.Profile.FriendsCount) }},
			{Name: "statuses_count", Cost: CostA, Extract: func(c *Context) float64 { return float64(c.Profile.StatusesCount) }},
		},
	}
}

// YangSet returns the feature set of Yang, Harkreader, Gu ("Empirical
// evaluation and new design for fighting evolving Twitter spammers",
// TIFS 2013): graph-based and neighbor-based features, the expensive but
// evasion-resistant end of the literature.
func YangSet() Set {
	return Set{
		Name: "yang",
		Features: []Feature{
			{Name: "bidirectional_link_ratio", Cost: CostC, Extract: BidirectionalLinkRatio},
			{Name: "ff_ratio", Cost: CostA, Extract: func(c *Context) float64 {
				if c.Profile.FollowersCount == 0 {
					return float64(c.Profile.FriendsCount)
				}
				return float64(c.Profile.FriendsCount) / float64(c.Profile.FollowersCount)
			}},
			{Name: "account_age_days", Cost: CostA, Extract: AgeDays},
			{Name: "link_ratio", Cost: CostB, Extract: LinkRatio},
			{Name: "mentions_per_tweet", Cost: CostB, Extract: MentionsPerTweet},
			{Name: "hashtags_per_tweet", Cost: CostB, Extract: HashtagsPerTweet},
			{Name: "tweets_per_day", Cost: CostA, Extract: TweetsPerDay},
		},
	}
}

// FullSet returns the union feature set the Fake Project classifier trains
// on: profile + timeline + behaviour features.
func FullSet() Set {
	s := ProfileSet()
	s.Name = "full"
	s.Features = append(s.Features,
		Feature{Name: "retweet_ratio", Cost: CostB, Extract: RetweetRatio},
		Feature{Name: "link_ratio", Cost: CostB, Extract: LinkRatio},
		Feature{Name: "spam_phrase_ratio", Cost: CostB, Extract: SpamPhraseRatio},
		Feature{Name: "duplicate_ratio", Cost: CostB, Extract: DuplicateRatio},
		Feature{Name: "max_duplicate_run", Cost: CostB, Extract: MaxDuplicateRun},
		Feature{Name: "reply_ratio", Cost: CostB, Extract: ReplyRatio},
		Feature{Name: "mentions_per_tweet", Cost: CostB, Extract: MentionsPerTweet},
		Feature{Name: "hashtags_per_tweet", Cost: CostB, Extract: HashtagsPerTweet},
		Feature{Name: "bidirectional_link_ratio", Cost: CostC, Extract: BidirectionalLinkRatio},
	)
	return s
}

// LookupSet returns the audit-time feature set of the deployed FC engine:
// class-A features plus the behaviour ratios available in the extended
// lookup payload — everything computable from users/lookup alone, which is
// what makes the 9,604-account sample answerable in ~97 API calls.
func LookupSet() Set {
	s := ProfileSet()
	s.Name = "lookup"
	s.Features = append(s.Features,
		Feature{Name: "retweet_ratio", Cost: CostA, Extract: func(c *Context) float64 { return c.Profile.Behavior.RetweetRatio }},
		Feature{Name: "link_ratio", Cost: CostA, Extract: func(c *Context) float64 { return c.Profile.Behavior.LinkRatio }},
		Feature{Name: "spam_phrase_ratio", Cost: CostA, Extract: func(c *Context) float64 { return c.Profile.Behavior.SpamRatio }},
		Feature{Name: "duplicate_ratio", Cost: CostA, Extract: func(c *Context) float64 { return c.Profile.Behavior.DuplicateRatio }},
	)
	return s
}

// CrawlCost estimates the number of API calls needed to evaluate the set on
// one account (the currency of the Fake Project's optimization): class A is
// amortised 1/100 per account, class B costs one timeline call, class C one
// followers/ids plus one friends/ids call.
func (s Set) CrawlCost() float64 {
	cost := 0.01 // the amortised lookup share
	hasB, hasC := false, false
	for _, f := range s.Features {
		switch f.Cost {
		case CostB:
			hasB = true
		case CostC:
			hasC = true
		}
	}
	if hasB {
		cost++
	}
	if hasC {
		cost += 2
	}
	return cost
}
