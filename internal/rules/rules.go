// Package rules implements the classification rule sets from the literature
// that Section III reports the Fake Project tested on its gold standard:
//
//   - Camisani-Calzolari's human/active rules [13];
//   - Socialbakers' Fake Follower Check criteria [14] (also the engine of
//     the Socialbakers tool simulator in internal/tools/socialbakers);
//   - Stateofsearch.com's "7 signals to look out for" to recognise
//     Twitter bots [15].
//
// Each set is expressed as weighted boolean rules over a features.Context
// plus a decision threshold, so the evaluation harness can score them
// uniformly against the ML classifiers.
package rules

import (
	"fakeproject/internal/features"
)

// Polarity states what a firing rule indicates. Start at one so the zero
// value is invalid.
type Polarity int

// Rule polarities.
const (
	// IndicatesFake means firing rules push towards "fake".
	IndicatesFake Polarity = iota + 1
	// IndicatesHuman means firing rules push towards "genuine" and the
	// *absence* of points marks an account as fake.
	IndicatesHuman
)

// Rule is one weighted criterion.
type Rule struct {
	Name string
	// Weight is the rule's points valuation ("all the criteria have a
	// given number of points valuation", Section II-B).
	Weight float64
	// Fire reports whether the criterion holds for the account.
	Fire func(*features.Context) bool
}

// Set is a named rule set with a decision threshold.
type Set struct {
	Name     string
	Polarity Polarity
	Rules    []Rule
	// Threshold is the points level at which the verdict flips: for
	// IndicatesFake sets, score >= Threshold means fake; for
	// IndicatesHuman sets, score < Threshold means fake.
	Threshold float64
}

// Score sums the weights of firing rules.
func (s Set) Score(ctx *features.Context) float64 {
	total := 0.0
	for _, r := range s.Rules {
		if r.Fire(ctx) {
			total += r.Weight
		}
	}
	return total
}

// MaxScore returns the sum of all weights.
func (s Set) MaxScore() float64 {
	total := 0.0
	for _, r := range s.Rules {
		total += r.Weight
	}
	return total
}

// Fake applies the threshold to the score.
func (s Set) Fake(ctx *features.Context) bool {
	score := s.Score(ctx)
	if s.Polarity == IndicatesHuman {
		return score < s.Threshold
	}
	return score >= s.Threshold
}

// Firing lists the names of the rules that fire, for report explanations.
func (s Set) Firing(ctx *features.Context) []string {
	var out []string
	for _, r := range s.Rules {
		if r.Fire(ctx) {
			out = append(out, r.Name)
		}
	}
	return out
}

// CamisaniCalzolari returns the human-indicating rule set of
// M. Camisani-Calzolari's analysis of the Obama/Romney follower bases
// (Aug 2012): accounts accumulate "human" points for profile completeness
// and engagement; low totals are ruled fake.
func CamisaniCalzolari() Set {
	return Set{
		Name:      "camisani-calzolari",
		Polarity:  IndicatesHuman,
		Threshold: 5,
		Rules: []Rule{
			{Name: "has_name", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.Name != "" }},
			{Name: "has_image", Weight: 1, Fire: func(c *features.Context) bool { return !c.Profile.DefaultProfileImage }},
			{Name: "has_address", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.Location != "" }},
			{Name: "has_bio", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.Bio != "" }},
			{Name: "followers_30_plus", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.FollowersCount >= 30 }},
			{Name: "has_url", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.URL != "" }},
			{Name: "tweets_50_plus", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.StatusesCount >= 50 }},
			{Name: "2x_followers_vs_friends", Weight: 1, Fire: func(c *features.Context) bool {
				return c.Profile.FollowersCount >= 2*c.Profile.FriendsCount
			}},
			{Name: "recently_active", Weight: 2, Fire: func(c *features.Context) bool {
				return features.LastTweetAgeDays(c) <= 90
			}},
		},
	}
}

// StateOfSearch returns stateofsearch.com's "How to recognize Twitterbots:
// 7 signals to look out for" (Sep 2012) as a fake-indicating rule set.
func StateOfSearch() Set {
	return Set{
		Name:      "stateofsearch",
		Polarity:  IndicatesFake,
		Threshold: 3,
		Rules: []Rule{
			{Name: "default_image", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.DefaultProfileImage }},
			{Name: "no_bio", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.Bio == "" }},
			{Name: "follows_many_followed_little", Weight: 1, Fire: func(c *features.Context) bool {
				return c.Profile.FriendsCount >= 100 && c.Profile.FollowerFriendRatio() < 0.1
			}},
			{Name: "few_or_no_tweets", Weight: 1, Fire: func(c *features.Context) bool { return c.Profile.StatusesCount < 20 }},
			{Name: "retweet_heavy", Weight: 1, Fire: func(c *features.Context) bool { return features.RetweetRatio(c) > 0.5 }},
			{Name: "link_heavy", Weight: 1, Fire: func(c *features.Context) bool { return features.LinkRatio(c) > 0.5 }},
			{Name: "young_account", Weight: 1, Fire: func(c *features.Context) bool { return features.AgeDays(c) < 60 }},
		},
	}
}

// Socialbakers returns the eight Fake Follower Check criteria exactly as the
// paper quotes them in Section II-B, with a points valuation per criterion.
// The vendor never disclosed the weights or the threshold ("no details are
// provided on how to weigh the satisfaction of each single criterion");
// the weights here make each strong single criterion decisive and pairs of
// weak ones cumulative, which reproduces the published verdicts on the
// archetypes of this study.
func Socialbakers() Set {
	return Set{
		Name:      "socialbakers",
		Polarity:  IndicatesFake,
		Threshold: 2,
		Rules: []Rule{
			// "following/follower ratio = 50:1 (or more)"
			{Name: "ff_ratio_50_to_1", Weight: 2, Fire: func(c *features.Context) bool {
				return c.Profile.FriendsCount >= 50*max(c.Profile.FollowersCount, 1)
			}},
			// "more than 30% of the account's tweets use spam phrases"
			{Name: "spam_phrases_30pct", Weight: 2, Fire: func(c *features.Context) bool {
				return c.Profile.StatusesCount > 0 && features.SpamPhraseRatio(c) > 0.30
			}},
			// "the same tweets are repeated more than three times"
			{Name: "repeated_tweets", Weight: 2, Fire: func(c *features.Context) bool {
				return features.MaxDuplicateRun(c) > 3
			}},
			// "more than 90% of the account's tweets are retweets"
			{Name: "retweets_90pct", Weight: 2, Fire: func(c *features.Context) bool {
				return c.Profile.StatusesCount > 0 && features.RetweetRatio(c) > 0.90
			}},
			// "more than 90% of the account's tweets are links"
			{Name: "links_90pct", Weight: 2, Fire: func(c *features.Context) bool {
				return c.Profile.StatusesCount > 0 && features.LinkRatio(c) > 0.90
			}},
			// "the account has never tweeted"
			{Name: "never_tweeted", Weight: 1, Fire: func(c *features.Context) bool {
				return c.Profile.HasNeverTweeted()
			}},
			// "the account is more than two months old and still has a
			// default profile image"
			{Name: "old_default_image", Weight: 1, Fire: func(c *features.Context) bool {
				return features.AgeDays(c) > 60 && c.Profile.DefaultProfileImage
			}},
			// "the user did not fill in neither bio nor location and, at
			// the same time, is following more than 100 accounts"
			{Name: "empty_profile_following_100", Weight: 1, Fire: func(c *features.Context) bool {
				return c.Profile.Bio == "" && c.Profile.Location == "" && c.Profile.FriendsCount > 100
			}},
		},
	}
}

// AllSets returns every literature rule set, for the evaluation sweep of
// Section III ("algorithms based on 1) single classification rules proposed
// by [13], [14], [15]").
func AllSets() []Set {
	return []Set{CamisaniCalzolari(), Socialbakers(), StateOfSearch()}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
