package rules

import (
	"testing"

	"fakeproject/internal/features"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// genuineCtx models an engaged, complete account.
func genuineCtx() *features.Context {
	return &features.Context{
		Profile: twitter.Profile{
			User: twitter.User{
				ID: 1, ScreenName: "real", Name: "Real Person",
				CreatedAt: simclock.Epoch.AddDate(-3, 0, 0),
				Bio:       "hi", Location: "Pisa", URL: "http://example.com",
			},
			FollowersCount: 800,
			FriendsCount:   300,
			StatusesCount:  4500,
			LastTweetAt:    simclock.Epoch.AddDate(0, 0, -2),
			Behavior:       twitter.Behavior{RetweetRatio: 0.2, LinkRatio: 0.25},
		},
		Now: simclock.Epoch,
	}
}

// boughtFakeCtx models a classic purchased follower: young, egg avatar,
// empty profile, follows thousands, never tweets.
func boughtFakeCtx() *features.Context {
	return &features.Context{
		Profile: twitter.Profile{
			User: twitter.User{
				ID: 2, ScreenName: "xkfj19d2", Name: "xkfj19d2",
				CreatedAt:           simclock.Epoch.AddDate(0, -4, 0),
				DefaultProfileImage: true,
			},
			FollowersCount: 3,
			FriendsCount:   2100,
			StatusesCount:  0,
		},
		Now: simclock.Epoch,
	}
}

// spamBotCtx models an active spam bot: tweets constantly, all links and
// duplicated spam phrases.
func spamBotCtx() *features.Context {
	return &features.Context{
		Profile: twitter.Profile{
			User: twitter.User{
				ID: 3, ScreenName: "dealz4u", Name: "dealz",
				CreatedAt: simclock.Epoch.AddDate(0, -8, 0),
			},
			FollowersCount: 25,
			FriendsCount:   1900,
			StatusesCount:  900,
			LastTweetAt:    simclock.Epoch.AddDate(0, 0, -1),
			Behavior: twitter.Behavior{
				RetweetRatio: 0.3, LinkRatio: 0.95,
				SpamRatio: 0.6, DuplicateRatio: 0.5,
			},
		},
		Now: simclock.Epoch,
	}
}

func TestCamisaniCalzolari(t *testing.T) {
	cc := CamisaniCalzolari()
	if cc.Fake(genuineCtx()) {
		t.Fatal("CC ruled the genuine account fake")
	}
	if !cc.Fake(boughtFakeCtx()) {
		t.Fatal("CC missed the bought fake")
	}
}

func TestStateOfSearch(t *testing.T) {
	sos := StateOfSearch()
	if sos.Fake(genuineCtx()) {
		t.Fatal("SoS ruled the genuine account fake")
	}
	if !sos.Fake(boughtFakeCtx()) {
		t.Fatal("SoS missed the bought fake")
	}
}

func TestSocialbakersOnArchetypes(t *testing.T) {
	sb := Socialbakers()
	if sb.Fake(genuineCtx()) {
		t.Fatal("SB ruled the genuine account fake")
	}
	if !sb.Fake(boughtFakeCtx()) {
		t.Fatal("SB missed the bought fake")
	}
	if !sb.Fake(spamBotCtx()) {
		t.Fatal("SB missed the spam bot")
	}
}

func TestSocialbakersIndividualCriteria(t *testing.T) {
	sb := Socialbakers()
	byName := make(map[string]Rule, len(sb.Rules))
	for _, r := range sb.Rules {
		byName[r.Name] = r
	}

	// 50:1 ratio criterion.
	ctx := genuineCtx()
	ctx.Profile.FriendsCount = 50 * ctx.Profile.FollowersCount
	if !byName["ff_ratio_50_to_1"].Fire(ctx) {
		t.Fatal("50:1 criterion should fire at exactly 50:1")
	}
	ctx = genuineCtx()
	if byName["ff_ratio_50_to_1"].Fire(ctx) {
		t.Fatal("50:1 criterion fired on genuine ratios")
	}

	// Zero-follower accounts must not divide away the ratio criterion.
	ctx = genuineCtx()
	ctx.Profile.FollowersCount = 0
	ctx.Profile.FriendsCount = 75
	if !byName["ff_ratio_50_to_1"].Fire(ctx) {
		t.Fatal("50:1 criterion should treat 0 followers as 1")
	}

	// Never tweeted.
	ctx = genuineCtx()
	ctx.Profile.StatusesCount = 0
	ctx.Profile.LastTweetAt = simclock.Epoch.AddDate(-1, 0, 0)
	if !byName["never_tweeted"].Fire(boughtFakeCtx()) {
		t.Fatal("never_tweeted should fire for 0 statuses")
	}

	// Old account with default image.
	if !byName["old_default_image"].Fire(boughtFakeCtx()) {
		t.Fatal("old_default_image should fire (4 months old, egg)")
	}
	young := boughtFakeCtx()
	young.Profile.CreatedAt = simclock.Epoch.AddDate(0, -1, 0)
	if byName["old_default_image"].Fire(young) {
		t.Fatal("old_default_image must not fire under two months")
	}

	// Empty profile following >100.
	if !byName["empty_profile_following_100"].Fire(boughtFakeCtx()) {
		t.Fatal("empty profile criterion should fire")
	}

	// Spam phrases criterion needs statuses.
	if byName["spam_phrases_30pct"].Fire(boughtFakeCtx()) {
		t.Fatal("spam criterion must not fire for accounts with no tweets")
	}
	if !byName["spam_phrases_30pct"].Fire(spamBotCtx()) {
		t.Fatal("spam criterion should fire for the spam bot")
	}
}

func TestScoreAndMaxScore(t *testing.T) {
	sb := Socialbakers()
	if sb.MaxScore() != 13 {
		t.Fatalf("SB MaxScore = %v, want 13", sb.MaxScore())
	}
	if got := sb.Score(genuineCtx()); got != 0 {
		t.Fatalf("SB score of genuine = %v, want 0", got)
	}
	if got := sb.Score(boughtFakeCtx()); got < 2 {
		t.Fatalf("SB score of fake = %v, want >= threshold", got)
	}
}

func TestFiringNames(t *testing.T) {
	sb := Socialbakers()
	names := sb.Firing(boughtFakeCtx())
	if len(names) == 0 {
		t.Fatal("no firing rules for the bought fake")
	}
	want := map[string]bool{
		"ff_ratio_50_to_1": true, "never_tweeted": true,
		"old_default_image": true, "empty_profile_following_100": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected firing rule %q", n)
		}
	}
}

func TestHumanPolarityThreshold(t *testing.T) {
	cc := CamisaniCalzolari()
	// Human-polarity sets flag *low* scores as fake.
	if cc.Score(genuineCtx()) < cc.Threshold {
		t.Fatal("genuine score should be at or above threshold")
	}
	if cc.Score(boughtFakeCtx()) >= cc.Threshold {
		t.Fatal("fake score should be below threshold")
	}
}

func TestAllSets(t *testing.T) {
	sets := AllSets()
	if len(sets) != 3 {
		t.Fatalf("AllSets = %d, want 3", len(sets))
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if seen[s.Name] {
			t.Fatalf("duplicate set %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Rules) == 0 || s.Threshold <= 0 {
			t.Fatalf("degenerate set %+v", s.Name)
		}
	}
}

func TestRuleSetsDisagreeOnEdgeCases(t *testing.T) {
	// Section III: "algorithms based on classification rules do not succeed
	// in detecting the fakes in our reference dataset" — rule sets are
	// fooled by fakes that dodge individual criteria. A fake with a real
	// photo, a bio, and a handful of tweets evades CC-style completeness
	// scoring while still being obviously purchased (ratio-wise).
	sneaky := &features.Context{
		Profile: twitter.Profile{
			User: twitter.User{
				ID: 9, ScreenName: "sneaky", Name: "Jane",
				CreatedAt: simclock.Epoch.AddDate(0, -10, 0),
				Bio:       "love life", Location: "NYC", URL: "http://x.example",
			},
			FollowersCount: 45,
			FriendsCount:   1800,
			StatusesCount:  60,
			LastTweetAt:    simclock.Epoch.AddDate(0, 0, -10),
			Behavior:       twitter.Behavior{RetweetRatio: 0.4, LinkRatio: 0.4},
		},
		Now: simclock.Epoch,
	}
	cc := CamisaniCalzolari()
	sos := StateOfSearch()
	if cc.Fake(sneaky) {
		t.Fatal("expected CC to be evaded by the sneaky fake (the paper's point)")
	}
	if sos.Fake(sneaky) {
		t.Fatal("expected SoS to be evaded too")
	}
}
