package report

import (
	"fmt"
	"io"

	"fakeproject/internal/experiments"
	"fakeproject/internal/monitord"
)

// MonitorWatch renders a monitoring replay: the ground-truth fake share
// next to every tool's verdict day by day, the per-tool tracking summary,
// the raised alerts, and the queue-discipline probe.
func MonitorWatch(w io.Writer, res *experiments.MonitorResult) error {
	fmt.Fprintf(w, "watched @%s (nominal %d followers) for %d days, cadence %v\n\n",
		res.Target, res.NominalFollowers, res.Days, res.Cadence)

	// Day-by-day series: truth vs tools. Points carry their round (round r
	// observed day r-1), so a failed round leaves a visible gap instead of
	// shifting every later verdict onto the wrong day.
	byRound := make(map[string]map[int]monitord.Point, len(res.Series))
	for tool, points := range res.Series {
		rounds := make(map[int]monitord.Point, len(points))
		for _, p := range points {
			rounds[p.Round] = p
		}
		byRound[tool] = rounds
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "day\tfollowers\ttruth fake\tFC\tTA\tSP\tSB")
	for i, truth := range res.Truth {
		row := fmt.Sprintf("%d\t%d\t%.1f%%", truth.Day, truth.Followers, truth.FakePct)
		for _, tool := range experiments.ToolOrder {
			if p, ok := byRound[tool][i+1]; ok {
				row += fmt.Sprintf("\t%.1f%%", p.FakePct)
			} else {
				row += "\t-"
			}
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nhow each tool trails the injected churn:")
	tw = newTab(w)
	fmt.Fprintln(tw, "tool\tbaseline\tpeak\tdetection delay\tmean |gap| to truth\tpost-burst bias")
	for _, trail := range res.Trails {
		delay := "never"
		if trail.DetectionDelayDays >= 0 {
			delay = fmt.Sprintf("%dd", trail.DetectionDelayDays)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%s\t%.1f pts\t%+.1f pts\n",
			trail.Tool, trail.BaselinePct, trail.PeakPct, delay,
			trail.MeanAbsGapPct, trail.PostBurstBiasPct)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	if err := MonitorAlerts(w, res.Alerts); err != nil {
		return err
	}

	if res.Probe != nil {
		fmt.Fprintf(w, "\ninteractive probe @%s: state %s, preempted %d/%d queued background re-audits\n",
			res.Probe.Target, res.Probe.Job.State,
			res.Probe.PreemptedBackground, res.Probe.BackgroundJobs)
	}
	return nil
}

// MonitorAlerts renders an alert list as a table.
func MonitorAlerts(w io.Writer, alerts []monitord.Alert) error {
	if len(alerts) == 0 {
		_, err := fmt.Fprintln(w, "no alerts raised")
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "at\ttarget\ttool\tkind\tvalue\tlimit")
	for _, a := range alerts {
		fmt.Fprintf(tw, "%s\t@%s\t%s\t%s\t%.1f\t%.1f\n",
			a.At.Format("2006-01-02 15:04"), a.Target, a.Tool, a.Kind, a.Value, a.Threshold)
	}
	return tw.Flush()
}
