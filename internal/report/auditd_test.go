package report

import (
	"strings"
	"testing"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
)

func TestAuditJobsRendering(t *testing.T) {
	jobs := []auditd.JobSnapshot{
		{
			ID:    auditd.JobID("j00000001"),
			Spec:  auditd.JobSpec{Target: "davc", Tools: []string{"socialbakers"}},
			State: auditd.StateDone,
			Results: map[string]auditd.ToolResult{
				"socialbakers": {
					Report: core.Report{
						Tool:             "socialbakers",
						InactivePct:      30,
						FakePct:          10,
						GenuinePct:       60,
						HasInactiveClass: true,
						Elapsed:          2 * time.Second,
					},
					CacheHit: true,
				},
			},
		},
		{
			ID:    auditd.JobID("j00000002"),
			Spec:  auditd.JobSpec{Target: "ghost", Tools: []string{"twitteraudit"}},
			State: auditd.StateFailed,
			Results: map[string]auditd.ToolResult{
				"twitteraudit": {Err: "user not found"},
			},
		},
		{
			ID:    auditd.JobID("j00000003"),
			Spec:  auditd.JobSpec{Target: "queuedone"},
			State: auditd.StateQueued,
		},
	}
	var sb strings.Builder
	if err := AuditJobs(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"@davc", "30.0%", "60.0%", "true", "user not found", "@queuedone", "queued"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAuditStatsRendering(t *testing.T) {
	var sb strings.Builder
	err := AuditStats(&sb, auditd.Stats{
		Workers: 8, QueueDepth: 3, QueueCap: 256,
		Submitted: 42, Deduped: 5, Rejected: 1,
		Completed: 30, Failed: 2,
		CacheHits: 17, CacheMisses: 25, InlineCache: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"8 workers", "queue 3/256", "submitted 42", "deduped 5", "17 hits", "11 jobs served inline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
