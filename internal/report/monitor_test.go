package report

import (
	"strings"
	"testing"
	"time"

	"fakeproject/internal/experiments"
	"fakeproject/internal/monitord"
	"fakeproject/internal/simclock"
)

func sampleMonitorResult() *experiments.MonitorResult {
	at := simclock.Epoch
	series := make(map[string][]monitord.Point)
	for _, tool := range experiments.ToolOrder {
		series[tool] = []monitord.Point{
			{At: at, Round: 1, Followers: 20000, FakePct: 8, GenuinePct: 92},
			{At: at.Add(24 * time.Hour), Round: 2, Followers: 23000, FakePct: 30, GenuinePct: 70},
		}
	}
	return &experiments.MonitorResult{
		Target:           "watchtarget_1",
		NominalFollowers: 39000000,
		Days:             1,
		Cadence:          24 * time.Hour,
		Truth: []experiments.TruthPoint{
			{Day: 0, Followers: 20000, FakePct: 8.2},
			{Day: 1, Followers: 23000, FakePct: 16.1},
		},
		Series: series,
		Alerts: []monitord.Alert{{
			At: at.Add(24 * time.Hour), Target: "watchtarget_1", Tool: "socialbakers",
			Kind: monitord.BurstAlert, Value: 3000, Threshold: 750,
		}},
		Trails: []experiments.ToolTrail{
			{Tool: "fakeproject-fc", BaselinePct: 8, PeakPct: 16, DetectionDelayDays: 0, MeanAbsGapPct: 0.4, PostBurstBiasPct: 0.1},
			{Tool: "socialbakers", BaselinePct: 7, PeakPct: 63, DetectionDelayDays: -1, MeanAbsGapPct: 12, PostBurstBiasPct: 30},
		},
		Probe: &experiments.ProbeOutcome{Target: "probetarget_2", BackgroundJobs: 4, PreemptedBackground: 3},
	}
}

func TestMonitorWatchRenders(t *testing.T) {
	var sb strings.Builder
	if err := MonitorWatch(&sb, sampleMonitorResult()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"watched @watchtarget_1",
		"truth fake",
		"follow-burst",
		"post-burst bias",
		"never", // socialbakers detection delay
		"preempted 3/4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMonitorAlertsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := MonitorAlerts(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no alerts") {
		t.Fatalf("output = %q", sb.String())
	}
}
