package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
	"fakeproject/internal/fc"
	"fakeproject/internal/ml"
)

func sampleTableIIIRows() []experiments.TableIIIRow {
	acct := core.PaperTestbed()[13] // PC_Chiambretti
	return []experiments.TableIIIRow{{
		Account: acct,
		Measured: map[string]core.Report{
			experiments.ToolFC: {InactivePct: 96.9, FakePct: 1.2, GenuinePct: 1.9, HasInactiveClass: true},
			experiments.ToolTA: {FakePct: 56.3, GenuinePct: 43.7},
			experiments.ToolSP: {InactivePct: 47.6, FakePct: 48.4, GenuinePct: 4, HasInactiveClass: true},
			experiments.ToolSB: {InactivePct: 18.2, FakePct: 33.9, GenuinePct: 47.9, HasInactiveClass: true},
		},
	}}
}

func TestTableIText(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GET followers/ids", "5000", "GET users/lookup", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIText(t *testing.T) {
	var buf bytes.Buffer
	if err := TableIII(&buf, sampleTableIIIRows()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@PC_Chiambretti", "70900", "96.9", "disagreement"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIText(t *testing.T) {
	rows := []experiments.TableIIRow{{
		ScreenName: "giovanniallevi",
		Followers:  13900,
		FirstSeconds: map[string]float64{
			experiments.ToolFC: 187, experiments.ToolTA: 47,
			experiments.ToolSP: 18, experiments.ToolSB: 9,
		},
		RepeatSeconds: map[string]float64{
			experiments.ToolFC: 2, experiments.ToolTA: 3,
			experiments.ToolSP: 2, experiments.ToolSB: 2.5,
		},
		Paper: &core.ResponseTimes{FC: 187, TA: 55, SP: 27, SB: 12},
	}}
	var buf bytes.Buffer
	if err := TableII(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@giovanniallevi", "187s", "187/55/27/12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIICSVParses(t *testing.T) {
	var buf bytes.Buffer
	if err := TableIIICSV(&buf, sampleTableIIIRows()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("csv rows = %d, want header + 1", len(records))
	}
	if len(records[0]) != 13 || records[1][0] != "PC_Chiambretti" {
		t.Fatalf("csv shape wrong: %v", records)
	}
}

func TestTableIICSVParses(t *testing.T) {
	rows := []experiments.TableIIRow{{
		ScreenName:    "x",
		Followers:     10,
		FirstSeconds:  map[string]float64{experiments.ToolFC: 1},
		RepeatSeconds: map[string]float64{experiments.ToolFC: 2},
	}}
	var buf bytes.Buffer
	if err := TableIICSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("csv rows = %d", len(records))
	}
}

func TestOtherRenderers(t *testing.T) {
	var buf bytes.Buffer
	if err := FollowerOrder(&buf, experiments.OrderResult{
		Accounts: 13, Days: 7, NewFollowers: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "confirmed: true") {
		t.Fatalf("order output: %s", buf.String())
	}

	buf.Reset()
	if err := CrawlEstimates(&buf, []experiments.CrawlEstimate{
		{Followers: 41000000, IDsCalls: 8200, LookupCalls: 410000, Duration: 29 * 24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "41000000") || !strings.Contains(buf.String(), "29.0") {
		t.Fatalf("crawl output: %s", buf.String())
	}

	buf.Reset()
	if err := Anecdote(&buf, experiments.AnecdoteResult{
		GenuineBase: 100000, Bought: 10000,
		TruePct: 9.1, FakersJunkPct: 99.5, FCJunkPct: 9.3,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "9.1%") {
		t.Fatalf("anecdote output: %s", buf.String())
	}

	buf.Reset()
	if err := DeepDive(&buf, []experiments.DeepDiveResult{{
		Case:           core.DeepDiveCases()[0],
		MeasuredFakers: 68, MeasuredDeepDive: 44,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "70%→45%") {
		t.Fatalf("deep dive output: %s", buf.String())
	}

	buf.Reset()
	if err := MethodResults(&buf, []fc.MethodResult{{
		Method: "forest/lookup", Kind: "fc",
		Metrics:   ml.ConfusionMatrix{TP: 90, TN: 95, FP: 5, FN: 10},
		CrawlCost: 0.01,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "forest/lookup") {
		t.Fatalf("method output: %s", buf.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"a\": 1") {
		t.Fatalf("json output: %s", buf.String())
	}
}
