package report

import (
	"fmt"
	"io"
	"sort"

	"fakeproject/internal/auditd"
)

// AuditJobs renders service-side audit jobs as a table: one line per
// (job, tool) with verdicts, cache provenance and latency — the service
// view of the quantities in Tables II and III.
func AuditJobs(w io.Writer, jobs []auditd.JobSnapshot) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "job\ttarget\tstate\ttool\tinactive\tfake\tgenuine\tcached\telapsed")
	for _, job := range jobs {
		if len(job.Results) == 0 {
			fmt.Fprintf(tw, "%s\t@%s\t%s\t-\t\t\t\t\t\n", job.ID, job.Spec.Target, job.State)
			continue
		}
		tools := make([]string, 0, len(job.Results))
		for tool := range job.Results {
			tools = append(tools, tool)
		}
		sort.Strings(tools)
		for _, tool := range tools {
			res := job.Results[tool]
			if res.Err != "" {
				fmt.Fprintf(tw, "%s\t@%s\t%s\t%s\terror: %s\t\t\t\t\n",
					job.ID, job.Spec.Target, job.State, tool, res.Err)
				continue
			}
			rep := res.Report
			inactive := fmt.Sprintf("%.1f%%", rep.InactivePct)
			if !rep.HasInactiveClass {
				inactive = "n/a"
			}
			fmt.Fprintf(tw, "%s\t@%s\t%s\t%s\t%s\t%.1f%%\t%.1f%%\t%v\t%v\n",
				job.ID, job.Spec.Target, job.State, tool,
				inactive, rep.FakePct, rep.GenuinePct, res.CacheHit, rep.Elapsed)
		}
	}
	return tw.Flush()
}

// AuditStats renders a service's operational counters.
func AuditStats(w io.Writer, st auditd.Stats) error {
	_, err := fmt.Fprintf(w,
		"audit service: %d workers, queue %d/%d\n"+
			"  submitted %d (deduped %d, rejected %d)\n"+
			"  completed %d, failed %d, canceled %d\n"+
			"  cache: %d hits / %d misses (%d jobs served inline)\n",
		st.Workers, st.QueueDepth, st.QueueCap,
		st.Submitted, st.Deduped, st.Rejected,
		st.Completed, st.Failed, st.Canceled,
		st.CacheHits, st.CacheMisses, st.InlineCache)
	return err
}
