// Package report renders experiment results as text tables mirroring the
// paper's layouts (Tables I-III) plus CSV and JSON exports for downstream
// analysis.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"fakeproject/internal/experiments"
	"fakeproject/internal/fc"
	"fakeproject/internal/twitterapi"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// TableI renders the API-limit table (Table I of the paper).
func TableI(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "API type\telem.×request\tmax requests×min.")
	for _, row := range twitterapi.TableI() {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", row.Endpoint, row.ElementsPerRequest, row.RequestsPerMinute)
	}
	return tw.Flush()
}

// TableII renders the response-time comparison (Table II), paper versus
// measured, with cache annotations.
func TableII(w io.Writer, rows []experiments.TableIIRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Twitter profile\tfollowers\tFC\tTA\tSP\tSB\tpaper(FC/TA/SP/SB)\tcached")
	for _, row := range rows {
		paper := "-"
		if row.Paper != nil {
			paper = fmt.Sprintf("%.0f/%.0f/%.0f/%.0f",
				row.Paper.FC, row.Paper.TA, row.Paper.SP, row.Paper.SB)
		}
		fmt.Fprintf(tw, "@%s\t%d\t%.0fs\t%.0fs\t%.0fs\t%.0fs\t%s\t%v\n",
			row.ScreenName, row.Followers,
			row.FirstSeconds[experiments.ToolFC],
			row.FirstSeconds[experiments.ToolTA],
			row.FirstSeconds[experiments.ToolSP],
			row.FirstSeconds[experiments.ToolSB],
			paper, row.CachedTools)
	}
	return tw.Flush()
}

// TableIII renders the verdict comparison (Table III), measured values with
// the paper's next to them.
func TableIII(w io.Writer, rows []experiments.TableIIIRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Twitter profile\tfollowers\tFC(in/fk/gd)\tTA(fk/gd)\tSP(in/fk/gd)\tSB(in/fk/gd)\tpaper FC\tpaper TA\tpaper SP\tpaper SB")
	for _, row := range rows {
		m := row.Measured
		fcR := m[experiments.ToolFC]
		taR := m[experiments.ToolTA]
		spR := m[experiments.ToolSP]
		sbR := m[experiments.ToolSB]
		a := row.Account
		fmt.Fprintf(tw, "@%s\t%d\t%.1f/%.1f/%.1f\t%.1f/%.1f\t%.0f/%.0f/%.0f\t%.0f/%.0f/%.0f\t%.1f/%.1f/%.1f\t%.1f/%.1f\t%.0f/%.0f/%.0f\t%.0f/%.0f/%.0f\n",
			a.ScreenName, a.Followers,
			fcR.InactivePct, fcR.FakePct, fcR.GenuinePct,
			taR.FakePct, taR.GenuinePct,
			spR.InactivePct, spR.FakePct, spR.GenuinePct,
			sbR.InactivePct, sbR.FakePct, sbR.GenuinePct,
			a.FC.Inactive, a.FC.Fake, a.FC.Genuine,
			a.TA.Fake, a.TA.Genuine,
			a.SP.Inactive, a.SP.Fake, a.SP.Genuine,
			a.SB.Inactive, a.SB.Fake, a.SB.Genuine)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	byClass := experiments.DisagreementByClass(rows)
	fmt.Fprintf(w, "\nmean pairwise disagreement on %%genuine: low=%.1f average=%.1f high=%.1f\n",
		byClass["low"], byClass["average"], byClass["high"])
	under := experiments.InactiveUndercount(rows)
	fmt.Fprintf(w, "mean inactive undercount vs FC: SP=%.1f SB=%.1f\n",
		under[experiments.ToolSP], under[experiments.ToolSB])
	return nil
}

// FollowerOrder renders the Section IV-B verification outcome.
func FollowerOrder(w io.Writer, res experiments.OrderResult) error {
	_, err := fmt.Fprintf(w,
		"follower-order experiment: %d accounts × %d daily snapshots, %d arrivals\n"+
			"  append violations: %d\n  prefix violations: %d\n  thesis confirmed: %v\n",
		res.Accounts, res.Days, res.NewFollowers,
		res.AppendViolations, res.PrefixViolations, res.Confirmed())
	return err
}

// CrawlEstimates renders full-crawl cost estimates.
func CrawlEstimates(w io.Writer, ests []experiments.CrawlEstimate) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "followers\tids calls\tlookup calls\tcrawl time\tdays")
	for _, e := range ests {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%.1f\n",
			e.Followers, e.IDsCalls, e.LookupCalls, e.Duration, e.Days())
	}
	return tw.Flush()
}

// Anecdote renders the Section II-A bought-followers result.
func Anecdote(w io.Writer, res experiments.AnecdoteResult) error {
	_, err := fmt.Fprintf(w,
		"bought-followers anecdote: %d genuine + %d bought\n"+
			"  true junk:   %5.1f%%\n  Fakers says: %5.1f%%   (paper: \"could show a 100%% of fake\")\n"+
			"  FC says:     %5.1f%%   (the right percentage)\n",
		res.GenuineBase, res.Bought, res.TruePct, res.FakersJunkPct, res.FCJunkPct)
	return err
}

// DeepDive renders the Fakers-vs-Deep-Dive comparison.
func DeepDive(w io.Writer, results []experiments.DeepDiveResult) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "account\tfollowers\tFakers\tDeepDive\tshift\tpaper")
	for _, r := range results {
		fmt.Fprintf(tw, "@%s\t%d\t%.1f%%\t%.1f%%\t-%.1f\t%.0f%%→%.0f%%\n",
			r.Case.ScreenName, r.Case.Followers,
			r.MeasuredFakers, r.MeasuredDeepDive, r.Shift(),
			r.Case.FakersPct, r.Case.DeepDivePct)
	}
	return tw.Flush()
}

// WindowSweep renders the sampling-window sweep series.
func WindowSweep(w io.Writer, points []experiments.WindowPoint) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "window\tjunk estimate\ttruth\t|error|")
	for _, p := range points {
		window := "whole list"
		if p.Window > 0 {
			window = fmt.Sprintf("newest %d", p.Window)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f pts\n",
			window, p.JunkPct, p.TruthPct, p.AbsError())
	}
	return tw.Flush()
}

// SamplingAblation renders the fixed-classifier, varying-window ablation.
func SamplingAblation(w io.Writer, rows []experiments.AblationRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "configuration\tjunk estimate\ttruth\t|error|\tAPI calls")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f pts\t%d\n",
			r.Label, r.JunkPct, r.TruthPct, r.AbsError(), r.APICalls)
	}
	return tw.Flush()
}

// MethodResults renders the Section III evaluation sweep.
func MethodResults(w io.Writer, results []fc.MethodResult) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "method\tkind\taccuracy\tprecision\trecall\tF1\tMCC\tcrawl cost")
	for _, r := range results {
		m := r.Metrics
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\n",
			r.Method, r.Kind, m.Accuracy(), m.Precision(), m.Recall(), m.F1(), m.MCC(), r.CrawlCost)
	}
	return tw.Flush()
}

// TableIIICSV exports measured Table III rows as CSV.
func TableIIICSV(w io.Writer, rows []experiments.TableIIIRow) error {
	cw := csv.NewWriter(w)
	header := []string{"screen_name", "followers",
		"fc_inactive", "fc_fake", "fc_genuine",
		"ta_fake", "ta_genuine",
		"sp_inactive", "sp_fake", "sp_genuine",
		"sb_inactive", "sb_fake", "sb_genuine"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
	for _, row := range rows {
		m := row.Measured
		fcR := m[experiments.ToolFC]
		taR := m[experiments.ToolTA]
		spR := m[experiments.ToolSP]
		sbR := m[experiments.ToolSB]
		record := []string{
			row.Account.ScreenName,
			strconv.Itoa(row.Account.Followers),
			f(fcR.InactivePct), f(fcR.FakePct), f(fcR.GenuinePct),
			f(taR.FakePct), f(taR.GenuinePct),
			f(spR.InactivePct), f(spR.FakePct), f(spR.GenuinePct),
			f(sbR.InactivePct), f(sbR.FakePct), f(sbR.GenuinePct),
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableIICSV exports measured Table II rows as CSV.
func TableIICSV(w io.Writer, rows []experiments.TableIIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"screen_name", "followers",
		"fc_s", "ta_s", "sp_s", "sb_s",
		"fc_repeat_s", "ta_repeat_s", "sp_repeat_s", "sb_repeat_s"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
	for _, row := range rows {
		record := []string{
			row.ScreenName, strconv.Itoa(row.Followers),
			f(row.FirstSeconds[experiments.ToolFC]),
			f(row.FirstSeconds[experiments.ToolTA]),
			f(row.FirstSeconds[experiments.ToolSP]),
			f(row.FirstSeconds[experiments.ToolSB]),
			f(row.RepeatSeconds[experiments.ToolFC]),
			f(row.RepeatSeconds[experiments.ToolTA]),
			f(row.RepeatSeconds[experiments.ToolSP]),
			f(row.RepeatSeconds[experiments.ToolSB]),
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSON writes any result structure as indented JSON.
func JSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
