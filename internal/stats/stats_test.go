package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateProportion(t *testing.T) {
	tests := []struct {
		name      string
		positives int
		n         int
		want      float64
		wantErr   bool
	}{
		{"half", 50, 100, 0.5, false},
		{"zero", 0, 10, 0, false},
		{"all", 10, 10, 1, false},
		{"bad n", 1, 0, 0, true},
		{"neg positives", -1, 10, 0, true},
		{"positives > n", 11, 10, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EstimateProportion(tt.positives, tt.n)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && got.PHat != tt.want {
				t.Fatalf("PHat = %v, want %v", got.PHat, tt.want)
			}
		})
	}
}

func TestZCriticalMatchesPaper(t *testing.T) {
	// Section II-D: "with a confidence level of 0.95 Zα = 1.96, while for
	// 0.99 Zα = 2.58".
	if z := ZCritical(0.95); math.Abs(z-1.96) > 0.005 {
		t.Fatalf("ZCritical(0.95) = %v, want ≈1.96", z)
	}
	if z := ZCritical(0.99); math.Abs(z-2.576) > 0.005 {
		t.Fatalf("ZCritical(0.99) = %v, want ≈2.58", z)
	}
	if z := ZCritical(0.90); math.Abs(z-1.645) > 0.005 {
		t.Fatalf("ZCritical(0.90) = %v, want ≈1.645", z)
	}
}

func TestZCriticalPanicsOutsideRange(t *testing.T) {
	for _, level := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ZCritical(%v) should panic", level)
				}
			}()
			ZCritical(level)
		}()
	}
}

func TestSampleSizeIs9604(t *testing.T) {
	// Section IV-C: "the sample size is always 9604, to guarantee a
	// confidence level of 95%, with a confidence interval of 1%".
	if n := SampleSize(0.95, 0.01); n != 9604 {
		t.Fatalf("SampleSize(0.95, 0.01) = %d, want 9604", n)
	}
}

func TestSampleSizeOtherLevels(t *testing.T) {
	// Common statistical reference values.
	tests := []struct {
		level, margin float64
		want          int
	}{
		{0.95, 0.05, 385},
		{0.95, 0.02, 2401},
		{0.99, 0.01, 16588},
	}
	for _, tt := range tests {
		got := SampleSize(tt.level, tt.margin)
		if int(math.Abs(float64(got-tt.want))) > 10 {
			t.Fatalf("SampleSize(%v,%v) = %d, want ≈%d", tt.level, tt.margin, got, tt.want)
		}
	}
}

func TestSampleSizeFinite(t *testing.T) {
	// For a tiny population the corrected size cannot exceed the population.
	if n := SampleSizeFinite(0.95, 0.01, 1000); n > 1000 {
		t.Fatalf("finite sample size %d exceeds population", n)
	}
	// For a huge population it converges to the unadjusted value.
	if n := SampleSizeFinite(0.95, 0.01, 100_000_000); n != 9604 && n != 9603 {
		t.Fatalf("finite sample size for huge population = %d, want ≈9604", n)
	}
	if n := SampleSizeFinite(0.95, 0.01, 0); n != 0 {
		t.Fatalf("zero population should need zero samples, got %d", n)
	}
}

func TestConfidenceIntervalCoversTruth(t *testing.T) {
	// With p̂ = 0.3 on n = 9604, the 95% CI must be ≈ ±1% wide (actually
	// tighter, since 0.25 is the conservative variance bound).
	p, err := EstimateProportion(2881, 9604)
	if err != nil {
		t.Fatal(err)
	}
	iv := p.ConfidenceInterval(0.95)
	if !iv.Contains(0.3) {
		t.Fatalf("interval %+v does not contain 0.3", iv)
	}
	if iv.Width() > 0.02 {
		t.Fatalf("interval width %v exceeds 2%%", iv.Width())
	}
}

func TestConfidenceIntervalClamped(t *testing.T) {
	p, _ := EstimateProportion(0, 10)
	iv := p.ConfidenceInterval(0.95)
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Fatalf("interval not clamped: %+v", iv)
	}
	p, _ = EstimateProportion(10, 10)
	iv = p.ConfidenceInterval(0.99)
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Fatalf("interval not clamped: %+v", iv)
	}
}

func TestIntervalWidthShrinksWithN(t *testing.T) {
	small, _ := EstimateProportion(30, 100)
	large, _ := EstimateProportion(3000, 10000)
	if small.ConfidenceInterval(0.95).Width() <= large.ConfidenceInterval(0.95).Width() {
		t.Fatal("larger sample should give narrower interval")
	}
}

func TestIntervalWidthGrowsWithLevel(t *testing.T) {
	p, _ := EstimateProportion(300, 1000)
	if p.ConfidenceInterval(0.99).Width() <= p.ConfidenceInterval(0.90).Width() {
		t.Fatal("higher confidence should give wider interval")
	}
}

func TestStdErrFinite(t *testing.T) {
	p, _ := EstimateProportion(500, 1000)
	if se := p.StdErrFinite(1000); se != 0 {
		t.Fatalf("sampling the whole population should have zero SE, got %v", se)
	}
	if se := p.StdErrFinite(1_000_000); math.Abs(se-p.StdErr()) > 1e-5 {
		t.Fatalf("FPC should be negligible for huge populations: %v vs %v", se, p.StdErr())
	}
	if se := p.StdErrFinite(2000); se >= p.StdErr() {
		t.Fatalf("FPC must shrink the standard error: %v >= %v", se, p.StdErr())
	}
}

func TestProportionProperties(t *testing.T) {
	f := func(posRaw, extraRaw uint16) bool {
		pos := int(posRaw % 1000)
		n := pos + int(extraRaw%1000) + 1
		p, err := EstimateProportion(pos, n)
		if err != nil {
			return false
		}
		if p.PHat < 0 || p.PHat > 1 {
			return false
		}
		iv := p.ConfidenceInterval(0.95)
		return iv.Contains(p.PHat) && iv.Lo >= 0 && iv.Hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if md := Median(xs); md != 4.5 {
		t.Fatalf("Median = %v, want 4.5", md)
	}
	if md := Median([]float64{3, 1, 2}); md != 2 {
		t.Fatalf("Median odd = %v, want 2", md)
	}
}

func TestDescriptiveStatsEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 ||
		MeanAbsoluteDeviation(nil) != 0 || PairwiseDisagreement(nil) != 0 ||
		MaxSpread(nil) != 0 || KSUniform(nil) != 0 {
		t.Fatal("empty inputs must yield zero")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestPairwiseDisagreement(t *testing.T) {
	// |10-20| + |10-40| + |20-40| = 10+30+20 = 60, / 3 pairs = 20.
	if d := PairwiseDisagreement([]float64{10, 20, 40}); d != 20 {
		t.Fatalf("PairwiseDisagreement = %v, want 20", d)
	}
	if d := PairwiseDisagreement([]float64{5, 5, 5}); d != 0 {
		t.Fatalf("identical values should not disagree, got %v", d)
	}
}

func TestMaxSpread(t *testing.T) {
	if s := MaxSpread([]float64{17, 97, 48, 55}); s != 80 {
		t.Fatalf("MaxSpread = %v, want 80", s)
	}
}

func TestMeanAbsoluteDeviation(t *testing.T) {
	if d := MeanAbsoluteDeviation([]float64{0, 10}); d != 5 {
		t.Fatalf("MAD = %v, want 5", d)
	}
}

func TestKSUniform(t *testing.T) {
	// A perfectly spread sample should have a tiny KS statistic.
	n := 1000
	spread := make([]float64, n)
	for i := range spread {
		spread[i] = (float64(i) + 0.5) / float64(n)
	}
	if d := KSUniform(spread); d > 0.01 {
		t.Fatalf("KS of near-uniform grid = %v, want < 0.01", d)
	}
	// A sample concentrated at the top (the newest-followers bias) should
	// be far from uniform.
	top := make([]float64, n)
	for i := range top {
		top[i] = 0.97 + 0.03*float64(i)/float64(n)
	}
	if d := KSUniform(top); d < 0.9 {
		t.Fatalf("KS of concentrated sample = %v, want > 0.9", d)
	}
}

func TestTwoProportionZ(t *testing.T) {
	a, _ := EstimateProportion(500, 1000)
	b, _ := EstimateProportion(500, 1000)
	if z := TwoProportionZ(a, b); z != 0 {
		t.Fatalf("identical proportions should give z=0, got %v", z)
	}
	c, _ := EstimateProportion(700, 1000)
	z := TwoProportionZ(c, a)
	if z < 8 {
		t.Fatalf("0.7 vs 0.5 on n=1000 should be wildly significant, z=%v", z)
	}
	if z2 := TwoProportionZ(a, c); math.Abs(z+z2) > 1e-12 {
		t.Fatalf("z should be antisymmetric: %v vs %v", z, z2)
	}
	// Degenerate pooled proportion (both zero) must not divide by zero.
	d0, _ := EstimateProportion(0, 10)
	if z := TwoProportionZ(d0, d0); z != 0 {
		t.Fatalf("degenerate case z = %v, want 0", z)
	}
}

func TestCICoverageSimulation(t *testing.T) {
	// Empirical check that the 95% Wald interval covers the true p
	// roughly 95% of the time for p=0.3, n=1000 (binomial via LCG).
	// This validates the machinery the FC engine's guarantee rests on.
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	const trials = 2000
	const n = 1000
	const p = 0.3
	covered := 0
	for tr := 0; tr < trials; tr++ {
		pos := 0
		for i := 0; i < n; i++ {
			if next() < p {
				pos++
			}
		}
		est, err := EstimateProportion(pos, n)
		if err != nil {
			t.Fatal(err)
		}
		if est.ConfidenceInterval(0.95).Contains(p) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("empirical CI coverage %.3f, want ≈0.95", rate)
	}
}
