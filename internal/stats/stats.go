// Package stats implements the statistical machinery of Section II-D of the
// paper: estimation of a population proportion from a sample, standard
// errors, Wald confidence intervals, critical values, and the sample-size
// computation that yields the Fake Project engine's n = 9,604 (95% confidence
// level, ±1% confidence interval), plus the agreement metrics used to
// quantify the disagreement between analytics in Table III.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadSample reports an estimation request with invalid sample parameters.
var ErrBadSample = errors.New("stats: invalid sample parameters")

// Proportion is the estimator p̂ = X/n for the share of a population that
// holds a property, as recalled in Section II-D.
type Proportion struct {
	// PHat is the point estimate X/n.
	PHat float64
	// N is the sample size.
	N int
}

// EstimateProportion builds the estimator from X positives out of n samples.
func EstimateProportion(positives, n int) (Proportion, error) {
	if n <= 0 || positives < 0 || positives > n {
		return Proportion{}, fmt.Errorf("%w: positives=%d n=%d", ErrBadSample, positives, n)
	}
	return Proportion{PHat: float64(positives) / float64(n), N: n}, nil
}

// StdErr returns the standard error sqrt(p̂(1-p̂)/n) of the estimator.
func (p Proportion) StdErr() float64 {
	return math.Sqrt(p.PHat * (1 - p.PHat) / float64(p.N))
}

// StdErrFinite returns the standard error with the finite-population
// correction applied, for a population of size N: se * sqrt((N-n)/(N-1)).
// For n << N this is indistinguishable from StdErr.
func (p Proportion) StdErrFinite(populationSize int) float64 {
	if populationSize <= 1 || p.N >= populationSize {
		return 0
	}
	fpc := math.Sqrt(float64(populationSize-p.N) / float64(populationSize-1))
	return p.StdErr() * fpc
}

// Interval is a two-sided confidence interval for a proportion, clamped to
// the feasible range [0,1].
type Interval struct {
	Lo, Hi float64
	// Level is the confidence level the interval was built for, e.g. 0.95.
	Level float64
}

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// ConfidenceInterval returns the Wald interval p̂ ± Z_α·σ at the given
// confidence level (Section II-D: Z=1.96 at 0.95, Z=2.58 at 0.99).
func (p Proportion) ConfidenceInterval(level float64) Interval {
	z := ZCritical(level)
	se := p.StdErr()
	return clampInterval(p.PHat-z*se, p.PHat+z*se, level)
}

// ConfidenceIntervalFinite is ConfidenceInterval with the finite-population
// correction for a population of the given size.
func (p Proportion) ConfidenceIntervalFinite(level float64, populationSize int) Interval {
	z := ZCritical(level)
	se := p.StdErrFinite(populationSize)
	return clampInterval(p.PHat-z*se, p.PHat+z*se, level)
}

func clampInterval(lo, hi, level float64) Interval {
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi, Level: level}
}

// ZCritical returns the two-sided critical value Z_α for the given confidence
// level in (0,1): the (1+level)/2 quantile of the standard normal.
// ZCritical(0.95) ≈ 1.96 and ZCritical(0.99) ≈ 2.58, the two values quoted in
// the paper. It panics if level is outside (0,1).
func ZCritical(level float64) float64 {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v outside (0,1)", level))
	}
	// Phi^-1(q) = sqrt(2) * erfinv(2q - 1), with q = (1+level)/2, so
	// 2q-1 = level.
	return math.Sqrt2 * math.Erfinv(level)
}

// SampleSize returns the sample size needed to estimate a proportion at the
// given confidence level within ±margin, using the conservative p=0.5:
// n = ceil(Z² · 0.25 / margin²).
//
// SampleSize(0.95, 0.01) = 9604, the Fake Project engine's sample size
// (Section IV-C).
func SampleSize(level, margin float64) int {
	if margin <= 0 || margin >= 1 {
		panic(fmt.Sprintf("stats: margin %v outside (0,1)", margin))
	}
	z := ZCritical(level)
	n := z * z * 0.25 / (margin * margin)
	return int(math.Ceil(n - 1e-9))
}

// SampleSizeFinite applies the finite-population correction to SampleSize
// for a population of size N: n' = n / (1 + (n-1)/N).
func SampleSizeFinite(level, margin float64, populationSize int) int {
	n := SampleSize(level, margin)
	if populationSize <= 0 {
		return 0
	}
	adj := float64(n) / (1 + float64(n-1)/float64(populationSize))
	out := int(math.Ceil(adj))
	if out > populationSize {
		out = populationSize
	}
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n), or 0 for
// fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// MeanAbsoluteDeviation returns the mean |x_i - mean(xs)|, the spread metric
// used to quantify per-account disagreement across tools in Table III.
func MeanAbsoluteDeviation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x - m)
	}
	return s / float64(len(xs))
}

// PairwiseDisagreement returns the mean absolute pairwise difference between
// the values: mean over all i<j of |x_i - x_j|. It is 0 for fewer than two
// values.
func PairwiseDisagreement(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	s := 0.0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += math.Abs(xs[i] - xs[j])
			pairs++
		}
	}
	return s / float64(pairs)
}

// MaxSpread returns max(xs) - min(xs), or 0 for an empty slice.
func MaxSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

// KSUniform returns the one-sample Kolmogorov-Smirnov statistic of xs
// against the Uniform(0,1) distribution: sup_x |F_n(x) - x|. The sampling
// package uses it to quantify how far a sampling scheme's normalised-rank
// distribution is from uniform (Section II-D's bias argument).
func KSUniform(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	d := 0.0
	for i, x := range cp {
		// Empirical CDF steps from i/n to (i+1)/n at x.
		lo := math.Abs(x - float64(i)/float64(n))
		hi := math.Abs(float64(i+1)/float64(n) - x)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// TwoProportionZ returns the z statistic for the difference between two
// independent sample proportions (pooled standard error). A |z| above the
// critical value at the desired level indicates the two analytics are
// reporting statistically incompatible results for the same account.
func TwoProportionZ(a, b Proportion) float64 {
	na, nb := float64(a.N), float64(b.N)
	pool := (a.PHat*na + b.PHat*nb) / (na + nb)
	se := math.Sqrt(pool * (1 - pool) * (1/na + 1/nb))
	if se == 0 {
		return 0
	}
	return (a.PHat - b.PHat) / se
}
