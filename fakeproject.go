// Package fakeproject is the public facade of the reproduction of
// "A Criticism to Society (as seen by Twitter analytics)" (Cresci, Di
// Pietro, Petrocchi, Spognardi, Tesconi — ICDCS Workshops 2014).
//
// The library simulates the complete measurement environment of the paper:
// a Twitter platform with chronologically ordered follow edges, the
// rate-limited API v1.1 endpoints of Table I, synthetic follower
// populations calibrated from the paper's own Table III, the three
// commercial fake-follower analytics the paper surveys (StatusPeople
// Fakers, Socialbakers Fake Follower Check, Twitteraudit) and the authors'
// Fake Project classifier (FC) — plus runners that regenerate every table
// and finding.
//
// Quick start:
//
//	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{
//	    Only: []string{"PC_Chiambretti"},
//	})
//	if err != nil { ... }
//	report, err := sim.Auditor(fakeproject.ToolFC).Audit("PC_Chiambretti")
//
// See the examples directory for runnable scenarios and cmd/experiments for
// the full paper regeneration.
package fakeproject

import (
	"context"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
	"fakeproject/internal/fc"
	"fakeproject/internal/monitord"
	"fakeproject/internal/population"
	"fakeproject/internal/stats"
)

// Tool keys identifying the four analytics engines.
const (
	ToolFC = experiments.ToolFC
	ToolTA = experiments.ToolTA
	ToolSP = experiments.ToolSP
	ToolSB = experiments.ToolSB
)

// Core audit types.
type (
	// Report is one tool's verdict on one target.
	Report = core.Report
	// Auditor is a fake-follower analytics engine.
	Auditor = core.Auditor
	// PaperAccount is one testbed account with the paper's published
	// numbers.
	PaperAccount = core.PaperAccount
	// Simulation is a fully assembled reproduction environment.
	Simulation = experiments.Simulation
	// SimConfig configures NewSimulation.
	SimConfig = experiments.SimConfig
	// Mix is a ground-truth class distribution.
	Mix = population.Mix
	// Layout positions class mixes along the follower timeline.
	Layout = population.Layout
	// Interval is a confidence interval.
	Interval = stats.Interval
	// GoldStandard is a labelled account reference set.
	GoldStandard = fc.GoldStandard
)

// Audit-service types (the auditd serving layer).
type (
	// AuditService is a concurrent audit-as-a-service scheduler: a worker
	// pool behind a priority/dedup queue with a shared TTL'd result cache.
	AuditService = auditd.Service
	// AuditConfig tunes an AuditService (workers, queue bound, cache TTL).
	AuditConfig = auditd.Config
	// AuditJobSpec is one audit request: target × tools × priority.
	AuditJobSpec = auditd.JobSpec
	// AuditJob is a point-in-time view of a submitted job.
	AuditJob = auditd.JobSnapshot
	// AuditStats summarises a service's operational counters.
	AuditStats = auditd.Stats
)

// Monitoring types (the monitord continuous-watch layer) and platform
// dynamics (the churn driver that gives it something to watch).
type (
	// Monitor re-audits a watchlist of targets on cadences over virtual
	// time, keeping per-tool verdict series and raising drift/burst alerts.
	Monitor = monitord.Monitor
	// MonitorConfig tunes a Monitor (service, clock, ring sizes, priority).
	MonitorConfig = monitord.Config
	// WatchSpec registers one target: tools × cadence × alert rules.
	WatchSpec = monitord.WatchSpec
	// WatchRules configures a watch's alert thresholds.
	WatchRules = monitord.Rules
	// SeriesPoint is one tool verdict in a target's time series.
	SeriesPoint = monitord.Point
	// Alert is one raised monitoring alert.
	Alert = monitord.Alert
	// ChurnScript plans a target's evolution (growth, bursts, purges).
	ChurnScript = population.ChurnScript
	// ChurnEvent schedules one burst or purge on a script day.
	ChurnEvent = population.ChurnEvent
	// ChurnDriver applies a ChurnScript to a target day by day.
	ChurnDriver = population.Driver
)

// NewMonitor starts a continuous monitor over an audit service running on
// the simulation's clock; close it with mon.Close() when done. Register
// targets with mon.Watch and drive it with mon.Tick (deterministic, one
// scheduler pass) or mon.Run (background loop).
func NewMonitor(sim *Simulation, svc *AuditService) (*Monitor, error) {
	return monitord.New(monitord.Config{Service: svc, Clock: sim.Clock})
}

// NewChurnDriver plans the evolution of the named target inside the
// simulation's platform.
func NewChurnDriver(sim *Simulation, target string, script ChurnScript) (*ChurnDriver, error) {
	id, err := sim.Store.LookupName(target)
	if err != nil {
		return nil, err
	}
	return population.NewDriver(sim.Gen, id, script), nil
}

// NewSimulation builds a reproduction environment: simulated platform,
// calibrated populations, trained FC classifier and the four analytics.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	return experiments.NewSimulation(cfg)
}

// NewAuditService starts a concurrent audit service over the simulation
// with the given worker-pool size; shut it down with
// svc.Shutdown(context.Background()) when done.
func NewAuditService(sim *Simulation, workers int) (*AuditService, error) {
	return sim.NewAuditService(auditd.Config{Workers: workers})
}

// SubmitAudit enqueues an audit of target on svc; empty tools means all
// four analytics. The returned job may already be terminal (cache fast
// path).
func SubmitAudit(svc *AuditService, target string, tools ...string) (AuditJob, error) {
	return svc.Submit(auditd.JobSpec{Target: target, Tools: tools})
}

// AwaitAudit blocks until the job reaches a terminal state or ctx expires.
func AwaitAudit(ctx context.Context, svc *AuditService, id auditd.JobID) (AuditJob, error) {
	return svc.Await(ctx, id)
}

// Audit submits target on svc and waits for the verdicts — the one-call
// service-side equivalent of sim.Auditor(tool).Audit(target).
func Audit(ctx context.Context, svc *AuditService, target string, tools ...string) (AuditJob, error) {
	job, err := SubmitAudit(svc, target, tools...)
	if err != nil {
		return AuditJob{}, err
	}
	if job.State.Terminal() {
		return job, nil
	}
	return svc.Await(ctx, job.ID)
}

// PaperTestbed returns the paper's 20-account testbed with every published
// Table II and Table III value.
func PaperTestbed() []PaperAccount { return core.PaperTestbed() }

// SampleSize returns the sample size for a proportion estimate at the given
// confidence level and margin; SampleSize(0.95, 0.01) is the FC engine's
// 9,604.
func SampleSize(level, margin float64) int { return stats.SampleSize(level, margin) }

// EstimateFullCrawl computes the rate-limit-bound time to crawl a complete
// follower base (IDs + every profile), the arithmetic behind the paper's
// 27-day Obama crawl.
func EstimateFullCrawl(followers, tokens int) experiments.CrawlEstimate {
	return experiments.EstimateFullCrawl(followers, tokens)
}

// BuildGoldStandard synthesises a labelled gold standard with n accounts
// per class, for training and evaluating detection methods.
func BuildGoldStandard(n int, seed uint64) (*GoldStandard, error) {
	return fc.BuildGoldStandard(n, seed)
}
